"""Two-round NCCL test for locating faulty nodes and links (§6.1).

The paper's procedure for frequent NVLink errors:

1. Split all nodes into two-node worlds (one world of three if the count
   is odd) and run an allgather in each.  A world whose allgather fails
   contains at least one faulty node — its members become suspects.
2. Pair every suspect with a node from a passing world and re-run the
   allgather.  A failing pair convicts the suspect; a passing pair clears
   it.  Convicted nodes are cordoned off.

The collective itself is abstracted behind :class:`CollectiveTester` so
the algorithm is exactly the production pairing logic, independent of the
transport.

:func:`localize_network_faults` extends the scheme from node conviction
to *link localization* — the paper's NVLink-vs-node distinction.  When a
world fails only across a shared leaf/spine path, the path segment is
convicted, not its endpoint nodes: pairing stays inside one leaf first
(so NIC/node faults surface without touching the fabric), then a cycle
of cross-leaf probes over cleared representatives sweeps the uplinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class World:
    """One test world (group of nodes running an allgather together)."""

    members: tuple[str, ...]


class CollectiveTester:
    """Runs (simulated) allgather tests against a hidden faulty set.

    A real deployment implements ``run_allgather`` with nccl-tests; here
    the collective fails iff any participant is in the injected faulty
    set.  ``tests_run`` counts collective launches — the efficiency the
    two-round scheme is optimizing.
    """

    def __init__(self, faulty_nodes: Iterable[str]) -> None:
        self.faulty_nodes = frozenset(faulty_nodes)
        self.tests_run = 0

    def run_allgather(self, world: World) -> bool:
        """True if the collective succeeds."""
        if not world.members:
            raise ValueError("empty world")
        self.tests_run += 1
        return not any(member in self.faulty_nodes
                       for member in world.members)


def _make_worlds(nodes: Sequence[str]) -> list[World]:
    """Pair nodes two at a time; fold a leftover into a world of three."""
    worlds = []
    count = len(nodes)
    even_end = count if count % 2 == 0 else count - 3
    for index in range(0, max(even_end, 0), 2):
        worlds.append(World((nodes[index], nodes[index + 1])))
    if count % 2 == 1:
        if count >= 3:
            worlds.append(World(tuple(nodes[-3:])))
        else:  # a single node cannot be paired; test it alone
            worlds.append(World((nodes[-1],)))
    return worlds


@dataclass
class NcclTestResult:
    """Outcome of the two-round procedure."""

    faulty: set[str] = field(default_factory=set)
    cleared: set[str] = field(default_factory=set)
    suspects_after_round1: set[str] = field(default_factory=set)
    tests_run: int = 0


def two_round_nccl_test(nodes: Sequence[str],
                        tester: CollectiveTester) -> NcclTestResult:
    """Identify the faulty nodes among ``nodes``.

    Guarantees (under the fail-iff-any-member-faulty model): every faulty
    node is convicted and no healthy node is, provided at least one world
    passes round 1 (otherwise there is no trusted partner and all
    suspects are conservatively convicted).
    """
    if len(set(nodes)) != len(nodes):
        raise ValueError("duplicate node names")
    result = NcclTestResult()
    if not nodes:
        result.tests_run = tester.tests_run
        return result

    # Round 1: pairwise sweep.
    suspects: list[str] = []
    healthy_pool: list[str] = []
    for world in _make_worlds(list(nodes)):
        if tester.run_allgather(world):
            healthy_pool.extend(world.members)
        else:
            suspects.extend(world.members)
    result.suspects_after_round1 = set(suspects)

    if not suspects:
        result.cleared = set(nodes)
        result.tests_run = tester.tests_run
        return result

    if not healthy_pool:
        # No trusted partner exists; cordon everything suspicious rather
        # than risk restarting onto broken hardware.
        result.faulty = set(suspects)
        result.tests_run = tester.tests_run
        return result

    # Round 2: pair each suspect with a known-good node.
    probe = healthy_pool[0]
    for suspect in suspects:
        if tester.run_allgather(World((suspect, probe))):
            result.cleared.add(suspect)
        else:
            result.faulty.add(suspect)
    result.cleared.update(healthy_pool)
    result.tests_run = tester.tests_run
    return result


# -- link localization --------------------------------------------------------


def leaf_segment(leaf: int) -> str:
    """Segment id of a leaf's uplink path (matches linkhealth naming)."""
    return f"leaf:{leaf}"


def pod_segment(pod: int) -> str:
    """Segment id of a pod's core-tier uplink (matches linkhealth)."""
    return f"pod:{pod}"


class FabricCollectiveTester:
    """Allgather tester whose failures come from the fabric, not a set.

    A collective fails when any participant is in the injected faulty
    set, any participant's NIC runs below ``min_factor`` of nominal, or
    — for worlds spanning leaves — any crossed leaf uplink does.  This
    is the observable the localization algorithm works against: it sees
    only pass/fail per world, never the factors directly.

    ``node_factors`` maps node name -> NIC health factor and
    ``segment_factors`` maps segment id -> uplink health factor
    (``leaf:{l}`` and, when ``pod_of_leaf`` is given, ``pod:{p}``);
    both default missing entries to 1.0 (healthy).  With a
    ``pod_of_leaf`` mapping, worlds that span pods additionally
    exercise the crossed pods' core-tier uplinks.
    """

    def __init__(self, leaf_of: Mapping[str, int],
                 node_factors: Mapping[str, float] | None = None,
                 segment_factors: Mapping[str, float] | None = None,
                 faulty_nodes: Iterable[str] = (),
                 min_factor: float = 0.5,
                 pod_of_leaf: Mapping[int, int] | None = None) -> None:
        self.leaf_of = dict(leaf_of)
        self.node_factors = dict(node_factors or {})
        self.segment_factors = dict(segment_factors or {})
        self.faulty_nodes = frozenset(faulty_nodes)
        self.min_factor = min_factor
        self.pod_of_leaf = dict(pod_of_leaf) if pod_of_leaf else None
        self.tests_run = 0

    def _node_ok(self, node: str) -> bool:
        if node in self.faulty_nodes:
            return False
        return self.node_factors.get(node, 1.0) >= self.min_factor

    def run_allgather(self, world: World) -> bool:
        """True if the collective succeeds."""
        if not world.members:
            raise ValueError("empty world")
        self.tests_run += 1
        if any(member in self.faulty_nodes for member in world.members):
            return False
        if len(world.members) == 1:
            # A single-node world exercises no fabric traffic.
            return True
        if any(self.node_factors.get(member, 1.0) < self.min_factor
               for member in world.members):
            return False
        leaves = {self.leaf_of[member] for member in world.members}
        if len(leaves) > 1:
            for leaf in sorted(leaves):
                factor = self.segment_factors.get(leaf_segment(leaf), 1.0)
                if factor < self.min_factor:
                    return False
            if self.pod_of_leaf is not None:
                pods = {self.pod_of_leaf[leaf]
                        for leaf in sorted(leaves)}
                if len(pods) > 1:
                    for pod in sorted(pods):
                        factor = self.segment_factors.get(
                            pod_segment(pod), 1.0)
                        if factor < self.min_factor:
                            return False
        return True


@dataclass
class LinkLocalizationResult:
    """Outcome of the topology-aware localization procedure."""

    #: nodes convicted (bad NIC or bad node — indistinguishable here)
    faulty_nodes: set[str] = field(default_factory=set)
    #: uplink segments (``leaf:{l}`` or ``pod:{p}``) convicted with two
    #: independent witnesses
    faulty_segments: set[str] = field(default_factory=set)
    #: segments implicated but not pinned (single witness / all-fail)
    ambiguous_segments: set[str] = field(default_factory=set)
    cleared: set[str] = field(default_factory=set)
    #: suspects that could not be resolved (no usable probe path)
    unresolved: set[str] = field(default_factory=set)
    suspects_after_round1: set[str] = field(default_factory=set)
    tests_run: int = 0


def localize_network_faults(nodes: Sequence[str],
                            tester: FabricCollectiveTester,
                            leaf_of: Mapping[str, int],
                            pod_of_leaf: Mapping[int, int] | None = None
                            ) -> LinkLocalizationResult:
    """Locate faulty nodes *and* faulty uplinks among ``nodes``.

    Four rounds, each reusing the two-round machinery at one tier:

    1. **Intra-leaf sweep** — pairwise worlds confined to one leaf, so a
       failure implicates a node/NIC, never an uplink.
    2. **Node conviction** — each suspect re-paired with a cleared node
       from its *own* leaf; fail convicts, pass clears.  Suspects in a
       leaf with no cleared partner are deferred to round 4.
    3. **Uplink cycle sweep** — one cleared representative per leaf,
       tested pairwise around a cycle so every uplink gets two
       independent witnesses.  A leaf incident to two failing worlds is
       convicted; a failure explained by an already-convicted endpoint
       clears its partner; anything else is ambiguous (never convicted
       — invariant: a healthy segment must not be cordoned).  A lone
       rep (its leaf has no partner, so round 1 never exercised its
       NIC) cannot pin its uplink: NIC and uplink are indistinguishable
       by collectives, so the *node* is convicted conservatively and
       the segment only flagged as ambiguous.
    4. **Deferred resolution** — deferred suspects probe cross-leaf
       through an exonerated uplink; a failure conservatively convicts
       the node (matching the base algorithm's bias) unless its own
       uplink is known-bad, in which case it stays unresolved.

    With a ``pod_of_leaf`` mapping, the leaf cycle of round 3 is
    confined to one pod (so a sick core-tier uplink cannot frame a leaf
    segment), and an extra **pod cycle sweep** runs between rounds 3
    and 4: one fully-vetted representative per pod — NIC exercised in
    round 1 *and* leaf uplink positively exonerated by a passing cycle
    world — tested pairwise around a cycle over the pods.  Two
    independent witnesses convict ``pod:{p}``; anything weaker is only
    ambiguous, preserving the never-convict-a-healthy-segment
    invariant at the core tier.  Round 4 then prefers same-pod probes
    and refuses cross-pod probes through implicated pod uplinks.
    Without ``pod_of_leaf`` the procedure is exactly the four-round
    scheme above (byte-identical world order).
    """
    if len(set(nodes)) != len(nodes):
        raise ValueError("duplicate node names")
    result = LinkLocalizationResult()
    if not nodes:
        result.tests_run = tester.tests_run
        return result

    by_leaf: dict[int, list[str]] = {}
    for node in nodes:
        by_leaf.setdefault(leaf_of[node], []).append(node)
    leaves = sorted(by_leaf)

    # Round 1: intra-leaf pairwise sweep (no fabric traffic crossed).
    suspects_by_leaf: dict[int, list[str]] = {}
    cleared_by_leaf: dict[int, list[str]] = {}
    for leaf in leaves:
        suspects_by_leaf[leaf] = []
        cleared_by_leaf[leaf] = []
        for world in _make_worlds(by_leaf[leaf]):
            if tester.run_allgather(world):
                cleared_by_leaf[leaf].extend(world.members)
            else:
                suspects_by_leaf[leaf].extend(world.members)
        result.suspects_after_round1.update(suspects_by_leaf[leaf])

    # Round 2: convict suspects against an intra-leaf cleared probe.
    deferred: list[str] = []
    for leaf in leaves:
        pool = cleared_by_leaf[leaf]
        for suspect in suspects_by_leaf[leaf]:
            if not pool:
                deferred.append(suspect)
                continue
            if tester.run_allgather(World((suspect, pool[0]))):
                result.cleared.add(suspect)
                pool.append(suspect)
            else:
                result.faulty_nodes.add(suspect)
    for leaf in leaves:
        result.cleared.update(cleared_by_leaf[leaf])
    result.cleared -= result.faulty_nodes

    # Round 3: cycle sweep over the leaf uplinks, confined to one pod
    # so a sick core-tier uplink cannot frame a leaf segment.  Without
    # pod information every leaf lands in one group — the legacy cycle.
    rep_leaves = [leaf for leaf in leaves if cleared_by_leaf[leaf]]
    reps = {leaf: cleared_by_leaf[leaf][0] for leaf in rep_leaves}
    pod_groups: dict[int, list[int]] = {}
    for leaf in rep_leaves:
        pod = pod_of_leaf[leaf] if pod_of_leaf is not None else 0
        pod_groups.setdefault(pod, []).append(leaf)
    #: leaves whose uplink passed a cycle world with zero incidents —
    #: the only leaves trusted to represent their pod at the core tier
    exonerated_leaves: set[int] = set()
    for pod in sorted(pod_groups):
        group = pod_groups[pod]
        if len(group) == 2:
            first, second = group
            if tester.run_allgather(World((reps[first], reps[second]))):
                exonerated_leaves.update(group)
            else:
                # One witness cannot tell which uplink is sick.
                result.ambiguous_segments.add(leaf_segment(first))
                result.ambiguous_segments.add(leaf_segment(second))
        elif len(group) >= 3:
            count = len(group)
            fails: list[tuple[int, int]] = []
            incident: dict[int, int] = {leaf: 0 for leaf in group}
            for index in range(count):
                left = group[index]
                right = group[(index + 1) % count]
                if not tester.run_allgather(
                        World((reps[left], reps[right]))):
                    fails.append((left, right))
                    incident[left] += 1
                    incident[right] += 1
            if len(fails) == count:
                # Every world failed: spine trouble or too many sick
                # uplinks to separate.  Convicting here could hit a
                # healthy segment, so everything stays ambiguous.
                for leaf in group:
                    result.ambiguous_segments.add(leaf_segment(leaf))
            else:
                for leaf in group:
                    if incident[leaf] == 0:
                        exonerated_leaves.add(leaf)
                    if incident[leaf] == 2:
                        if len(by_leaf[leaf]) == 1:
                            # Round 1 never exercised this lone rep's
                            # NIC (a single-node world moves no fabric
                            # bytes), so its NIC and its uplink are
                            # observationally identical.  Convict the
                            # node — the safe, conservative call — and
                            # flag the segment rather than risk
                            # cordoning a healthy uplink.
                            result.faulty_nodes.add(reps[leaf])
                            result.cleared.discard(reps[leaf])
                            result.ambiguous_segments.add(
                                leaf_segment(leaf))
                        else:
                            result.faulty_segments.add(leaf_segment(leaf))
                for left, right in fails:
                    if incident[left] < 2 and incident[right] < 2:
                        # Neither endpoint was convicted: one witness.
                        result.ambiguous_segments.add(leaf_segment(left))
                        result.ambiguous_segments.add(leaf_segment(right))

    # Pod cycle sweep: probe the core tier through fully-vetted reps.
    if pod_of_leaf is not None and len(pod_groups) > 1:
        pod_reps: dict[int, str] = {}
        for pod in sorted(pod_groups):
            for leaf in pod_groups[pod]:
                # A trustworthy pod witness needs both a NIC exercised
                # by a real multi-node world and a positively
                # exonerated leaf uplink; otherwise a pod-cycle failure
                # could be the rep's own path, framing the pod segment.
                if len(by_leaf[leaf]) >= 2 and leaf in exonerated_leaves:
                    pod_reps[pod] = reps[leaf]
                    break
        pods = sorted(pod_reps)
        if len(pods) == 2:
            world = World((pod_reps[pods[0]], pod_reps[pods[1]]))
            if not tester.run_allgather(world):
                result.ambiguous_segments.add(pod_segment(pods[0]))
                result.ambiguous_segments.add(pod_segment(pods[1]))
        elif len(pods) >= 3:
            pod_count = len(pods)
            pod_fails: list[tuple[int, int]] = []
            pod_incident: dict[int, int] = {pod: 0 for pod in pods}
            for index in range(pod_count):
                left = pods[index]
                right = pods[(index + 1) % pod_count]
                world = World((pod_reps[left], pod_reps[right]))
                if not tester.run_allgather(world):
                    pod_fails.append((left, right))
                    pod_incident[left] += 1
                    pod_incident[right] += 1
            if len(pod_fails) == pod_count:
                for pod in pods:
                    result.ambiguous_segments.add(pod_segment(pod))
            else:
                for pod in pods:
                    if pod_incident[pod] == 2:
                        result.faulty_segments.add(pod_segment(pod))
                for left, right in pod_fails:
                    if pod_incident[left] < 2 and pod_incident[right] < 2:
                        result.ambiguous_segments.add(pod_segment(left))
                        result.ambiguous_segments.add(pod_segment(right))

    # Round 4: resolve suspects whose leaf had no intra-leaf probe.
    bad_segments = result.faulty_segments | result.ambiguous_segments
    probe_leaves = [leaf for leaf in rep_leaves
                    if leaf_segment(leaf) not in bad_segments]
    if not rep_leaves:
        # No cleared node anywhere: no trusted partner exists, cordon
        # everything suspicious (matches two_round_nccl_test).
        result.faulty_nodes.update(deferred)
        deferred = []
    for suspect in deferred:
        own_leaf = leaf_of[suspect]
        if leaf_segment(own_leaf) in bad_segments or not probe_leaves:
            # A cross-leaf probe would test the sick uplink, not the
            # node — or there is no trustworthy path at all.
            result.unresolved.add(suspect)
            continue
        candidates = probe_leaves
        if pod_of_leaf is not None:
            own_pod = pod_of_leaf[own_leaf]
            same_pod = [leaf for leaf in probe_leaves
                        if pod_of_leaf[leaf] == own_pod]
            if same_pod:
                candidates = same_pod
            elif pod_segment(own_pod) in bad_segments:
                result.unresolved.add(suspect)
                continue
            else:
                candidates = [
                    leaf for leaf in probe_leaves
                    if pod_segment(pod_of_leaf[leaf]) not in bad_segments]
                if not candidates:
                    result.unresolved.add(suspect)
                    continue
        probe = reps[candidates[0]]
        if tester.run_allgather(World((suspect, probe))):
            result.cleared.add(suspect)
        else:
            result.faulty_nodes.add(suspect)

    result.tests_run = tester.tests_run
    return result
