"""Training-anomaly detectors (§5.3's restart triggers).

Three situations demand a restart: (1) an error inside the job — handled
by the diagnosis system; (2) a loss spike that does not recover; (3) a
stuck training process.  This module covers (2) and (3), plus the
failure class in between: a job that neither errors nor hangs but whose
step time quietly drifts upward (a straggling node), detected from the
observed timeseries alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import deque


@dataclass(frozen=True)
class AnomalyEvent:
    """A detected anomaly."""

    kind: str          # "loss_spike", "hang", or "straggler"
    step: int
    detail: str


class LossSpikeDetector:
    """Flags a loss spike that fails to recover.

    A spike is a loss sample exceeding the trailing-window mean by
    ``threshold`` standard deviations (with a relative floor).  The spike
    is only *reported* if the loss stays elevated for ``patience``
    consecutive steps — the paper restarts only when a spike "does not
    recover over a certain period".
    """

    def __init__(self, window: int = 50, threshold: float = 4.0,
                 relative_floor: float = 0.15,
                 patience: int = 10) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.window = window
        self.threshold = threshold
        self.relative_floor = relative_floor
        self.patience = patience
        self._history: deque[float] = deque(maxlen=window)
        self._elevated_since: int | None = None

    def _is_elevated(self, loss: float) -> bool:
        n = len(self._history)
        if n < self.window // 2:
            return False
        mean = sum(self._history) / n
        variance = sum((x - mean) ** 2 for x in self._history) / n
        std = variance ** 0.5
        bound = mean + max(self.threshold * std,
                           self.relative_floor * abs(mean))
        return loss > bound

    def observe(self, step: int, loss: float) -> AnomalyEvent | None:
        """Feed one loss sample; returns an event once a spike persists."""
        elevated = self._is_elevated(loss)
        if elevated:
            if self._elevated_since is None:
                self._elevated_since = step
            if step - self._elevated_since + 1 >= self.patience:
                since = self._elevated_since
                self._elevated_since = None
                return AnomalyEvent(
                    kind="loss_spike", step=step,
                    detail=f"loss elevated since step {since}")
        else:
            self._elevated_since = None
            self._history.append(loss)  # only healthy samples train stats
        return None


class StepTimeDeviationDetector:
    """Flags sustained step-time deviation — the straggler signature.

    Stragglers and silent degraders never crash and never log: the only
    observable is the training timeseries itself drifting away from the
    nominal step time (the ByteDance "slow node" catalogue).  Each
    probe feeds the *ratio* of observed to nominal step time; a ratio
    at or above ``threshold`` for ``patience`` consecutive probes
    raises a ``straggler`` anomaly.  A single elevated probe (a
    checkpoint stall, a transient) is ignored; any healthy probe
    resets the streak.  Degraders that stay below the threshold are
    deliberately *not* detected here — they are the silent-waste class
    the chaos invariants flag at the end of the run instead.
    """

    def __init__(self, threshold: float = 1.15,
                 patience: int = 2) -> None:
        if threshold <= 1.0:
            raise ValueError("threshold must be > 1.0")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.threshold = threshold
        self.patience = patience
        self._streak = 0

    def observe(self, step: int, ratio: float) -> AnomalyEvent | None:
        """Feed one observed/nominal step-time ratio."""
        if ratio >= self.threshold:
            self._streak += 1
            if self._streak >= self.patience:
                self._streak = 0  # re-arm after reporting
                return AnomalyEvent(
                    kind="straggler", step=step,
                    detail=f"step time {ratio:.2f}x nominal for "
                           f"{self.patience} consecutive probes")
        else:
            self._streak = 0
        return None


class HangDetector:
    """Flags a stuck job: no step progress within ``timeout`` seconds.

    Appendix A.1 motivates this: jobs stalling on silent infrastructure
    issues wasted large-scale resources until someone noticed manually.
    """

    def __init__(self, timeout: float = 1800.0) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self._last_step: int | None = None
        self._last_progress_time: float | None = None

    def heartbeat(self, time: float, step: int) -> AnomalyEvent | None:
        """Report the current (wall time, step); returns an event on hang."""
        if self._last_step is None or step > self._last_step:
            self._last_step = step
            self._last_progress_time = time
            return None
        assert self._last_progress_time is not None
        stalled = time - self._last_progress_time
        if stalled >= self.timeout:
            self._last_progress_time = time  # re-arm after reporting
            return AnomalyEvent(
                kind="hang", step=step,
                detail=f"no progress for {stalled:.0f}s")
        return None
