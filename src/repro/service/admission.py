"""Admission control and overload state for the streaming service.

The paper's §2.2 resource-isolation guarantee is a graceful-degradation
contract: when demand exceeds capacity, best-effort work queues (or is
turned away) while the reserved pretraining quota keeps running.  This
module supplies the pieces :class:`~repro.service.cluster.ClusterService`
uses to honour that contract past saturation:

* :class:`OverloadState` — the explicit ``HEALTHY → PRESSURED →
  SATURATED → SHEDDING`` ladder, driven by scheduler queue depth
  through hysteresis watermarks (:class:`OverloadConfig`);
* :class:`AdmissionPolicy` implementations — accept-all (the
  baseline), a queue-depth cap, a seeded token-bucket rate limiter
  with random early drop, and per-stream weighted quotas.

Two properties are load-bearing:

* **Reserved bypass.**  Policies are never consulted for reserved-class
  jobs (:data:`RESERVED_TYPES`); the service admits them uncondi-
  tionally, so no policy — however misconfigured — can reject or shed
  pretraining work.  Chaos invariant 15 checks this live.
* **Determinism.**  Every policy decision is a pure function of the
  decision sequence and the :class:`AdmissionView` it is handed; the
  token bucket's only randomness comes from the registered
  ``"admission"`` RNG stream.  Replaying the service journal therefore
  reproduces every admit/reject byte-for-byte, which is what lets
  snapshot/restore work mid-overload.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.chaos.streams import stream_rng
from repro.scheduler.job import Job
from repro.scheduler.policy import ReservationPolicy

#: job types admission control must never reject, defer, or shed —
#: the scheduler's reserved classes (§2.2 quota holders)
RESERVED_TYPES = ReservationPolicy.reserved_types


class OverloadState(enum.IntEnum):
    """Service pressure ladder; higher values are worse."""

    HEALTHY = 0
    PRESSURED = 1
    SATURATED = 2
    SHEDDING = 3

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class OverloadConfig:
    """Watermarks and knobs for the overload state machine.

    The state *rises* the moment queue depth reaches a state's entry
    watermark and *falls* one rung only when depth drops below the
    next-lower entry watermark (``healthy_depth`` at the bottom) —
    classic hysteresis, so the state never flaps on a depth oscillating
    around one threshold.
    """

    #: depth at which PRESSURED begins
    pressured_depth: int = 32
    #: depth below which PRESSURED relaxes back to HEALTHY
    healthy_depth: int = 16
    #: depth at which SATURATED begins (arrival chains defer)
    saturated_depth: int = 96
    #: depth at which SHEDDING begins (age-based shedding arms)
    shedding_depth: int = 160
    #: how long a saturated stream chain parks before re-checking
    defer_seconds: float = 120.0
    #: queued best-effort work older than this is shed while SHEDDING
    shed_max_age_s: float = 1800.0
    #: cadence of the shed sweep (also reaps expired deadlines)
    sweep_interval_s: float = 300.0
    #: sitting at SATURATED continuously for this long escalates to
    #: SHEDDING even below the depth watermark — backpressure holds
    #: the depth down, but parked jobs keep aging, and *sustained*
    #: saturation is exactly when stale work should be culled
    escalate_after_s: float = 900.0

    def __post_init__(self) -> None:
        if not (0 <= self.healthy_depth < self.pressured_depth
                <= self.saturated_depth <= self.shedding_depth):
            raise ValueError(
                "watermarks must satisfy healthy < pressured <= "
                "saturated <= shedding")
        if min(self.defer_seconds, self.shed_max_age_s,
               self.sweep_interval_s, self.escalate_after_s) <= 0:
            raise ValueError("overload intervals must be positive")

    def to_config_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_config_dict(cls, payload: Mapping[str, Any]
                         ) -> "OverloadConfig":
        return cls(**dict(payload))

    def resolve(self, previous: OverloadState,
                depth: int) -> OverloadState:
        """Next state for ``depth``, with hysteresis against
        ``previous``."""
        entry = {OverloadState.PRESSURED: self.pressured_depth,
                 OverloadState.SATURATED: self.saturated_depth,
                 OverloadState.SHEDDING: self.shedding_depth}
        state = previous
        for candidate in (OverloadState.SHEDDING,
                          OverloadState.SATURATED,
                          OverloadState.PRESSURED):
            if depth >= entry[candidate]:
                state = max(state, candidate)
                break
        # fall one rung at a time, each gated by the watermark below
        exits = {OverloadState.SHEDDING: self.saturated_depth,
                 OverloadState.SATURATED: self.pressured_depth,
                 OverloadState.PRESSURED: self.healthy_depth}
        while (state is not OverloadState.HEALTHY
               and depth < exits[state]):
            state = OverloadState(state - 1)
        return state


@dataclass(frozen=True)
class AdmissionView:
    """What a policy may look at when deciding (pure snapshot)."""

    now: float
    #: total scheduler queue depth (reserved + best-effort)
    queue_depth: int
    #: best-effort jobs this service admitted and still queued
    best_effort_depth: int
    #: best-effort queued counts per arrival source (stream name or
    #: ``"external"``)
    source_depths: Mapping[str, int]
    overload: OverloadState


@dataclass(frozen=True)
class AdmissionDecision:
    admitted: bool
    reason: str


class AdmissionPolicy:
    """Base policy: decides best-effort admits; reserved work bypasses.

    Subclasses override :meth:`decide`; config round-trips through
    :meth:`to_config_dict` / :func:`policy_from_config` so the service
    snapshot can rebuild the exact policy (including its seed) before
    replaying the journal.
    """

    kind: str = "accept-all"

    def decide(self, job: Job, source: str,
               view: AdmissionView) -> AdmissionDecision:
        return AdmissionDecision(True, "accept-all")

    def depth_bound(self) -> int | None:
        """Hard cap this policy puts on best-effort queue depth, if
        any — armed as chaos invariant 16 when not ``None``."""
        return None

    def to_config_dict(self) -> dict[str, Any]:
        return {"kind": self.kind}


class AcceptAllPolicy(AdmissionPolicy):
    """The baseline: every arrival is admitted (measurement control)."""

    kind = "accept-all"


class QueueDepthCapPolicy(AdmissionPolicy):
    """Reject best-effort arrivals once the queue holds ``max_depth``.

    The cap applies to the *best-effort* depth the service tracks, so
    reserved work (which bypasses admission anyway) can never push
    best-effort arrivals out of an otherwise-empty queue.
    """

    kind = "queue-depth"

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = int(max_depth)

    def decide(self, job: Job, source: str,
               view: AdmissionView) -> AdmissionDecision:
        if view.best_effort_depth >= self.max_depth:
            return AdmissionDecision(
                False, f"queue-depth cap {self.max_depth} reached")
        return AdmissionDecision(True, "below queue-depth cap")

    def depth_bound(self) -> int | None:
        return self.max_depth

    def to_config_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "max_depth": self.max_depth}


class TokenBucketPolicy(AdmissionPolicy):
    """Seeded token-bucket rate limiter with random early drop.

    Tokens refill continuously at ``rate_per_hour`` up to ``burst``;
    each admit consumes one.  An empty bucket rejects outright.  While
    the bucket sits below ``red_fraction`` of ``burst``, arrivals are
    admitted with probability proportional to the remaining fill (RED-
    style early drop), drawn from the registered ``"admission"`` RNG
    stream — so the drop pattern is a pure function of the seed and
    the decision sequence, and journal replay reproduces it exactly.
    """

    kind = "token-bucket"

    def __init__(self, rate_per_hour: float = 120.0,
                 burst: float = 32.0, red_fraction: float = 0.5,
                 seed: int = 0) -> None:
        if rate_per_hour <= 0 or burst <= 0:
            raise ValueError("rate_per_hour and burst must be positive")
        if not 0.0 <= red_fraction <= 1.0:
            raise ValueError("red_fraction must be in [0, 1]")
        self.rate_per_hour = float(rate_per_hour)
        self.burst = float(burst)
        self.red_fraction = float(red_fraction)
        self.seed = int(seed)
        self._rng = stream_rng(self.seed, "admission")
        self._tokens = self.burst
        self._refilled_at = 0.0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(
            self.burst,
            self._tokens + elapsed * self.rate_per_hour / 3600.0)
        self._refilled_at = now

    def decide(self, job: Job, source: str,
               view: AdmissionView) -> AdmissionDecision:
        self._refill(view.now)
        if self._tokens < 1.0:
            return AdmissionDecision(False, "token bucket empty")
        red_level = self.red_fraction * self.burst
        if self._tokens < red_level:
            keep = self._tokens / red_level
            if float(self._rng.random()) >= keep:
                return AdmissionDecision(
                    False, f"early drop (fill {keep:.2f})")
        self._tokens -= 1.0
        return AdmissionDecision(True, "token consumed")

    def to_config_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "rate_per_hour": self.rate_per_hour,
                "burst": self.burst, "red_fraction": self.red_fraction,
                "seed": self.seed}


class WeightedQuotaPolicy(AdmissionPolicy):
    """Per-stream weighted shares of a bounded best-effort queue.

    ``slots`` bounds the total best-effort queue depth (invariant 16);
    below that bound, each source may hold at most its weighted share
    ``max(1, floor(slots * weight / sum(weights)))`` of the slots.
    Sources missing from ``weights`` get ``default_weight``, counted
    against the listed total — a heavy stream can therefore never
    starve a light one of its share.
    """

    kind = "weighted-quota"

    def __init__(self, slots: int = 64,
                 weights: Mapping[str, float] | None = None,
                 default_weight: float = 1.0) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.slots = int(slots)
        self.weights = dict(weights or {})
        if any(weight <= 0 for weight in self.weights.values()):
            raise ValueError("weights must be positive")
        self.default_weight = float(default_weight)

    def _share(self, source: str) -> int:
        weight = self.weights.get(source, self.default_weight)
        total = sum(self.weights.values()) + (
            0.0 if source in self.weights else self.default_weight)
        return max(1, int(self.slots * weight / total))

    def decide(self, job: Job, source: str,
               view: AdmissionView) -> AdmissionDecision:
        if view.best_effort_depth >= self.slots:
            return AdmissionDecision(
                False, f"all {self.slots} best-effort slots full")
        share = self._share(source)
        held = view.source_depths.get(source, 0)
        if held >= share:
            return AdmissionDecision(
                False, f"source {source!r} over its {share}-slot share")
        return AdmissionDecision(True, "within weighted share")

    def depth_bound(self) -> int | None:
        return self.slots

    def to_config_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "slots": self.slots,
                "weights": dict(self.weights),
                "default_weight": self.default_weight}


#: policy kinds accepted by the CLI and :func:`policy_from_config`
POLICY_KINDS: tuple[str, ...] = (
    AcceptAllPolicy.kind, QueueDepthCapPolicy.kind,
    TokenBucketPolicy.kind, WeightedQuotaPolicy.kind)

_POLICY_CLASSES: dict[str, type[AdmissionPolicy]] = {
    AcceptAllPolicy.kind: AcceptAllPolicy,
    QueueDepthCapPolicy.kind: QueueDepthCapPolicy,
    TokenBucketPolicy.kind: TokenBucketPolicy,
    WeightedQuotaPolicy.kind: WeightedQuotaPolicy,
}


def policy_from_config(config: Mapping[str, Any]) -> AdmissionPolicy:
    """Rebuild a policy from its :meth:`to_config_dict` output."""
    payload = dict(config)
    kind = payload.pop("kind", None)
    cls = _POLICY_CLASSES.get(kind)
    if cls is None:
        known = ", ".join(POLICY_KINDS)
        raise ValueError(
            f"unknown admission policy kind {kind!r} (known: {known})")
    return cls(**payload)
