"""A long-lived cluster simulation under streaming load.

Everything else in the repository is batch-shaped: build a scenario,
run to the horizon, report.  :class:`ClusterService` wraps one
persistent :class:`~repro.sim.engine.Engine` + scheduler + chaos/
recovery stack (a :class:`~repro.chaos.harness.ChaosHarness`) and
operates it the way the paper's cluster is operated — continuously:

* **streaming submissions** — seeded open-ended arrival processes
  (:mod:`repro.workload.streams`) feed jobs and eval-trial bursts into
  the live scheduler, one engine event per arrival, forever;
* **incremental horizons** — :meth:`advance` runs the engine to a
  deadline and returns live gauges (queue depth, GPUs busy, pending
  events, fault backlog) without tearing anything down;
* **self-checkpointing** — :meth:`checkpoint` routes a snapshot of the
  service's own state through the existing ``core/checkpoint.py``
  persist pipeline, so simulator snapshots get the same retry /
  replication / quarantine semantics as training state, and
  :meth:`restore` rebuilds a byte-identical service from storage.

Determinism: every mutating entry point (attach / submit / advance) is
journaled, and all stream randomness lives in registered RNG streams,
so replaying the journal against a fresh service reconstructs the
exact engine heap — which :meth:`~repro.sim.engine.Engine.restore`
then verifies structurally before the service resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chaos.harness import ChaosHarness, ChaosResult
from repro.chaos.scenario import ChaosScenario
from repro.core.checkpoint import (InMemoryStorage, RetryPolicy,
                                   SyncCheckpointer)
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.scheduler.job import Job
from repro.service.state import (STATE_VERSION, ServiceStateError,
                                 decode_state, encode_state,
                                 job_from_dict, job_to_dict,
                                 scenario_from_dict, scenario_to_dict,
                                 text_digest)
from repro.sim.engine import EngineSnapshot
from repro.workload.streams import ArrivalStream, stream_from_config


class _VirtualClock:
    """Offset-accumulating clock for the persist pipeline.

    ``sleep`` (retry backoff) only grows a virtual offset — the
    single-threaded service never blocks the wall clock, mirroring the
    chaos harness's engine clock.  The service resets the offset
    around each persist/restore and charges it to
    :attr:`ClusterService.persist_stall_seconds`.
    """

    def __init__(self, base: Any = None) -> None:
        self._base = base
        self.offset = 0.0

    def now(self) -> float:
        base = 0.0 if self._base is None else self._base.now
        return base + self.offset

    def sleep(self, seconds: float) -> None:
        self.offset += seconds


@dataclass(frozen=True)
class ServiceGauges:
    """Live operating gauges, sampled between horizons."""

    now: float
    queue_depth: int
    gpus_busy: int
    pending_events: int
    #: injected faults whose time is still ahead of the clock
    fault_backlog: int
    jobs_submitted: int
    jobs_finished: int
    pretrain_iteration: int
    events_processed: int
    engine_digest: str
    scheduler_digest: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "now": self.now,
            "queue_depth": self.queue_depth,
            "gpus_busy": self.gpus_busy,
            "pending_events": self.pending_events,
            "fault_backlog": self.fault_backlog,
            "jobs_submitted": self.jobs_submitted,
            "jobs_finished": self.jobs_finished,
            "pretrain_iteration": self.pretrain_iteration,
            "events_processed": self.events_processed,
            "engine_digest": self.engine_digest,
            "scheduler_digest": self.scheduler_digest,
        }


class ClusterService:
    """The streaming simulation service (see module docstring)."""

    def __init__(self, scenario: ChaosScenario,
                 streams: tuple[ArrivalStream, ...] | list[ArrivalStream]
                 = (),
                 storage: Any = None,
                 retry: RetryPolicy | None = None,
                 tracer: TracerLike | None = None) -> None:
        self.scenario = scenario
        self.tracer = tracer or NULL_TRACER
        self.harness = ChaosHarness(scenario, tracer=tracer)
        self.engine = self.harness.engine
        self.scheduler = self.harness.scheduler
        #: every mutating op since construction, in order — replaying
        #: it against a fresh service reconstructs this one exactly
        self._journal: list[list[Any]] = []
        self._streams: list[ArrivalStream] = []
        self.jobs_submitted = 0
        self.persist_stall_seconds = 0.0
        self._storage = (InMemoryStorage() if storage is None
                         else storage)
        self._clock = _VirtualClock(self.engine)
        self._checkpointer = SyncCheckpointer(
            self._storage, retry=retry or RetryPolicy(),
            clock=self._clock, tracer=self.tracer)
        self._next_generation = 0
        self.harness.start()
        for stream in streams:
            self.attach_stream(stream)

    @property
    def storage(self) -> Any:
        """The checkpoint storage backend this service persists to."""
        return self._storage

    # -- streaming submissions --------------------------------------------

    def attach_stream(self, stream: ArrivalStream) -> None:
        """Attach an open-ended arrival process (journaled).

        The stream's first arrival is scheduled immediately; each
        arrival event chains the next one, so the stream generates
        exactly as far as the run advances — never a whole trace.
        """
        demands = (max(stream.config.gpu_choices)
                   if hasattr(stream.config, "gpu_choices")
                   else stream.config.gpu_demand)
        if demands > self.scheduler.config.total_gpus:
            raise ValueError(
                f"stream {stream.config.name!r} can demand {demands} "
                f"GPUs but the cluster has "
                f"{self.scheduler.config.total_gpus}")
        self._journal.append(["attach", stream.to_config_dict()])
        self._streams.append(stream)
        self._chain(stream)

    def _chain(self, stream: ArrivalStream) -> None:
        arrivals = stream.emit_next()
        chain_index = max(range(len(arrivals)),
                          key=lambda i: arrivals[i][0])
        for index, (time, job) in enumerate(arrivals):
            # an arrival nominally due before the clock (burst jitter
            # overlapping the next anchor) fires now — deterministic,
            # since the chain structure never depends on horizons
            self.engine.call_at(
                max(time, self.engine.now),
                lambda j=job, s=stream, tail=(index == chain_index):
                    self._on_arrival(j, s, tail))

    def _on_arrival(self, job: Job, stream: ArrivalStream,
                    tail: bool) -> None:
        self._submit_now(job)
        if tail:
            self._chain(stream)

    def _submit_now(self, job: Job) -> None:
        self.scheduler.submit(job, at=self.engine.now)
        self.jobs_submitted += 1

    def submit(self, job: Job) -> None:
        """Submit one externally supplied job (journaled)."""
        self._journal.append(["submit", job_to_dict(job)])
        self._submit_now(job)

    # -- incremental operation --------------------------------------------

    def advance(self, until: float) -> ServiceGauges:
        """Run to simulated time ``until``; returns live gauges.

        Journaled.  Horizons are cumulative: any partitioning of a run
        into ``advance`` calls is event-for-event identical to one
        batch run to the final horizon.
        """
        self._journal.append(["advance", float(until)])
        self.harness.advance(until)
        return self.gauges()

    def gauges(self) -> ServiceGauges:
        """Sample the live operating gauges (pure read)."""
        return ServiceGauges(
            now=self.engine.now,
            queue_depth=len(self.scheduler.queue),
            gpus_busy=self.scheduler.gpus_allocated,
            pending_events=self.engine.pending,
            fault_backlog=sum(1 for fault in self.harness.faults
                              if fault.time > self.engine.now),
            jobs_submitted=self.jobs_submitted,
            jobs_finished=len(self.scheduler.finished),
            pretrain_iteration=self.harness.pretrain.iteration,
            events_processed=self.engine.events_processed,
            engine_digest=self.engine.snapshot().digest(),
            scheduler_digest=self.scheduler.state_digest(),
        )

    def finish(self) -> ChaosResult:
        """Tear down and summarize; no further advances accepted."""
        return self.harness.finish()

    def event_log_text(self) -> str:
        """The harness event log so far, as stable text lines."""
        return "\n".join(
            f"{time:12.3f}  {kind:<18} {detail}"
            for time, kind, detail in self.harness.event_log)

    # -- checkpoint / restore ---------------------------------------------

    def checkpoint(self) -> int:
        """Persist a restorable snapshot; returns its generation.

        Routed through :class:`SyncCheckpointer`, so flaky storage is
        retried under the policy and an exhausted budget raises
        :class:`~repro.core.checkpoint.CheckpointError` — the service
        itself stays consistent and can keep advancing either way.
        """
        generation = self._next_generation
        self._clock.offset = 0.0
        try:
            self._checkpointer.save(generation,
                                    encode_state(self._state_payload()))
        finally:
            self.persist_stall_seconds += self._clock.offset
            self._clock.offset = 0.0
        self._next_generation = generation + 1
        return generation

    def _state_payload(self) -> dict[str, Any]:
        snapshot = self.engine.snapshot()
        return {
            "version": STATE_VERSION,
            "scenario": scenario_to_dict(self.scenario),
            "journal": self._journal,
            "engine": {
                "now": snapshot.now,
                "next_seq": snapshot.next_seq,
                "events_processed": snapshot.events_processed,
                "heap": [list(entry) for entry in snapshot.heap],
                "digest": snapshot.digest(),
            },
            "scheduler_digest": self.scheduler.state_digest(),
            "event_log_digest": text_digest(self.event_log_text()),
        }

    @classmethod
    def restore(cls, storage: Any, *,
                at_or_before: int | None = None,
                retry: RetryPolicy | None = None,
                tracer: TracerLike | None = None) -> "ClusterService":
        """Rebuild a service from its newest persisted snapshot.

        Walks generations through ``load_at_or_before`` (corrupt ones
        are quarantined, older generations are fallen back to), then
        replays the journal against a fresh service and verifies the
        engine heap, scheduler digest, and event-log digest all match
        what the snapshot recorded.  Raises
        :class:`~repro.core.checkpoint.StorageError` when storage is
        unreachable and :class:`ServiceStateError` when nothing
        readable exists or the replay diverges.
        """
        probe = SyncCheckpointer(storage,
                                 retry=retry or RetryPolicy(),
                                 clock=_VirtualClock(), tracer=tracer)
        loaded = probe.load_at_or_before(at_or_before)
        if loaded is None:
            raise ServiceStateError(
                "no readable service snapshot in storage")
        generation, state = loaded
        payload = decode_state(state)
        service = cls(scenario_from_dict(payload["scenario"]),
                      storage=storage, retry=retry, tracer=tracer)
        service._replay(payload["journal"])
        service._verify(payload)
        service._next_generation = generation + 1
        return service

    def _replay(self, journal: list[list[Any]]) -> None:
        for entry in journal:
            op, arg = entry
            if op == "attach":
                self.attach_stream(stream_from_config(arg))
            elif op == "submit":
                self.submit(job_from_dict(arg))
            elif op == "advance":
                self.advance(arg)
            else:
                raise ServiceStateError(
                    f"unknown journal op {op!r}")

    def _verify(self, payload: dict[str, Any]) -> None:
        recorded = payload["engine"]
        snapshot = EngineSnapshot(
            now=recorded["now"], next_seq=recorded["next_seq"],
            events_processed=recorded["events_processed"],
            heap=tuple((float(time), int(seq), bool(cancelled))
                       for time, seq, cancelled in recorded["heap"]))
        # structural heap verification + clock/seq fast-forward;
        # raises SimulationError if the replay diverged
        self.engine.restore(snapshot)
        if snapshot.digest() != recorded["digest"]:
            raise ServiceStateError(
                f"engine digest mismatch after replay: "
                f"{snapshot.digest()} != {recorded['digest']}")
        scheduler_digest = self.scheduler.state_digest()
        if scheduler_digest != payload["scheduler_digest"]:
            raise ServiceStateError(
                f"scheduler state diverged after replay: "
                f"{scheduler_digest} != {payload['scheduler_digest']}")
        log_digest = text_digest(self.event_log_text())
        if log_digest != payload["event_log_digest"]:
            raise ServiceStateError(
                f"event log diverged after replay: "
                f"{log_digest} != {payload['event_log_digest']}")
