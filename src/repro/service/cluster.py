"""A long-lived cluster simulation under streaming load.

Everything else in the repository is batch-shaped: build a scenario,
run to the horizon, report.  :class:`ClusterService` wraps one
persistent :class:`~repro.sim.engine.Engine` + scheduler + chaos/
recovery stack (a :class:`~repro.chaos.harness.ChaosHarness`) and
operates it the way the paper's cluster is operated — continuously:

* **streaming submissions** — seeded open-ended arrival processes
  (:mod:`repro.workload.streams`) feed jobs and eval-trial bursts into
  the live scheduler, one engine event per arrival, forever;
* **incremental horizons** — :meth:`advance` runs the engine to a
  deadline and returns live gauges (queue depth, GPUs busy, pending
  events, fault backlog) without tearing anything down;
* **self-checkpointing** — :meth:`checkpoint` routes a snapshot of the
  service's own state through the existing ``core/checkpoint.py``
  persist pipeline, so simulator snapshots get the same retry /
  replication / quarantine semantics as training state, and
  :meth:`restore` rebuilds a byte-identical service from storage.

Determinism: every mutating entry point (attach / submit / advance) is
journaled, and all stream randomness lives in registered RNG streams,
so replaying the journal against a fresh service reconstructs the
exact engine heap — which :meth:`~repro.sim.engine.Engine.restore`
then verifies structurally before the service resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chaos.harness import ChaosHarness, ChaosResult
from repro.chaos.scenario import ChaosScenario
from repro.core.checkpoint import (InMemoryStorage, RetryPolicy,
                                   SyncCheckpointer)
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.scheduler.job import Job
from repro.service.admission import (RESERVED_TYPES, AdmissionPolicy,
                                     AdmissionView, OverloadConfig,
                                     OverloadState, policy_from_config)
from repro.service.state import (STATE_VERSION, ServiceStateError,
                                 decode_state, encode_state,
                                 job_from_dict, job_to_dict,
                                 scenario_from_dict, scenario_to_dict,
                                 text_digest)
from repro.sim.engine import EngineSnapshot
from repro.workload.streams import ArrivalStream, stream_from_config


class _VirtualClock:
    """Offset-accumulating clock for the persist pipeline.

    ``sleep`` (retry backoff) only grows a virtual offset — the
    single-threaded service never blocks the wall clock, mirroring the
    chaos harness's engine clock.  The service resets the offset
    around each persist/restore and charges it to
    :attr:`ClusterService.persist_stall_seconds`.
    """

    def __init__(self, base: Any = None) -> None:
        self._base = base
        self.offset = 0.0

    def now(self) -> float:
        base = 0.0 if self._base is None else self._base.now
        return base + self.offset

    def sleep(self, seconds: float) -> None:
        self.offset += seconds


@dataclass(frozen=True)
class ServiceGauges:
    """Live operating gauges, sampled between horizons."""

    now: float
    queue_depth: int
    gpus_busy: int
    pending_events: int
    #: injected faults whose time is still ahead of the clock
    fault_backlog: int
    jobs_submitted: int
    jobs_finished: int
    pretrain_iteration: int
    events_processed: int
    engine_digest: str
    scheduler_digest: str
    #: overload state machine position (``healthy`` when disarmed)
    overload_state: str
    jobs_rejected: int
    jobs_shed: int
    chains_deferred: int
    #: highest queue depth seen so far (tracked while overload armed)
    queue_depth_peak: int
    #: crc32 of the admission decision log (empty log = crc of "")
    admission_digest: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "now": self.now,
            "queue_depth": self.queue_depth,
            "gpus_busy": self.gpus_busy,
            "pending_events": self.pending_events,
            "fault_backlog": self.fault_backlog,
            "jobs_submitted": self.jobs_submitted,
            "jobs_finished": self.jobs_finished,
            "pretrain_iteration": self.pretrain_iteration,
            "events_processed": self.events_processed,
            "engine_digest": self.engine_digest,
            "scheduler_digest": self.scheduler_digest,
            "overload_state": self.overload_state,
            "jobs_rejected": self.jobs_rejected,
            "jobs_shed": self.jobs_shed,
            "chains_deferred": self.chains_deferred,
            "queue_depth_peak": self.queue_depth_peak,
            "admission_digest": self.admission_digest,
        }


class ClusterService:
    """The streaming simulation service (see module docstring)."""

    def __init__(self, scenario: ChaosScenario,
                 streams: tuple[ArrivalStream, ...] | list[ArrivalStream]
                 = (),
                 storage: Any = None,
                 retry: RetryPolicy | None = None,
                 tracer: TracerLike | None = None,
                 admission: AdmissionPolicy | None = None,
                 overload: OverloadConfig | None = None) -> None:
        self.scenario = scenario
        self.tracer = tracer or NULL_TRACER
        self.harness = ChaosHarness(scenario, tracer=tracer)
        self.engine = self.harness.engine
        self.scheduler = self.harness.scheduler
        #: every mutating op since construction, in order — replaying
        #: it against a fresh service reconstructs this one exactly
        self._journal: list[list[Any]] = []
        self._streams: list[ArrivalStream] = []
        self.jobs_submitted = 0
        self.persist_stall_seconds = 0.0
        self._storage = (InMemoryStorage() if storage is None
                         else storage)
        self._clock = _VirtualClock(self.engine)
        self._checkpointer = SyncCheckpointer(
            self._storage, retry=retry or RetryPolicy(),
            clock=self._clock, tracer=self.tracer)
        self._next_generation = 0
        # -- overload machinery (strict no-op when disarmed: goldens
        # with admission disabled stay byte-identical) --
        self.admission = admission
        self.overload = overload
        self._armed = admission is not None or overload is not None
        self.overload_state = OverloadState.HEALTHY
        self.jobs_rejected = 0
        self.jobs_shed = 0
        self.chains_deferred = 0
        self.queue_depth_peak = 0
        #: every admit / reject / shed / state decision, in order —
        #: replayed byte-identically by the journal (digest-verified)
        self.admission_log: list[tuple[float, str, str]] = []
        #: best-effort jobs this service admitted and still queued:
        #: job_id -> (source, time it (re-)entered the queue)
        self._queued: dict[str, tuple[str, float]] = {}
        #: admitted job -> arrival source, kept until the job leaves
        #: the scheduler (preempted jobs re-queue under their source)
        self._origin: dict[str, str] = {}
        self._source_depth: dict[str, int] = {}
        self._shed_span: Any = None
        self._saturated_since: float | None = None
        if self._armed:
            self.scheduler.hooks.append(self._on_scheduler_event)
            bound = (admission.depth_bound()
                     if admission is not None else None)
            self.harness.checker.set_admission_context(
                RESERVED_TYPES,
                lambda: len(self._queued), bound)
        self.harness.start()
        if overload is not None:
            self.engine.call_after(overload.sweep_interval_s,
                                   self._shed_sweep)
        for stream in streams:
            self.attach_stream(stream)

    @property
    def storage(self) -> Any:
        """The checkpoint storage backend this service persists to."""
        return self._storage

    # -- streaming submissions --------------------------------------------

    def attach_stream(self, stream: ArrivalStream) -> None:
        """Attach an open-ended arrival process (journaled).

        The stream's first arrival is scheduled immediately; each
        arrival event chains the next one, so the stream generates
        exactly as far as the run advances — never a whole trace.
        """
        demands = stream.max_gpu_demand()
        if demands > self.scheduler.config.total_gpus:
            raise ValueError(
                f"stream {stream.config.name!r} can demand {demands} "
                f"GPUs but the cluster has "
                f"{self.scheduler.config.total_gpus}")
        self._journal.append(["attach", stream.to_config_dict()])
        self._streams.append(stream)
        self._chain(stream)

    def _chain(self, stream: ArrivalStream) -> None:
        arrivals = stream.emit_next()
        if not arrivals:
            # an empty emission still advanced the stream's anchor
            # clock; re-chain from there instead of crashing on
            # max() over an empty range
            self.engine.call_at(
                max(stream.anchor_time(), self.engine.now),
                lambda s=stream: self._chain(s))
            return
        chain_index = max(range(len(arrivals)),
                          key=lambda i: arrivals[i][0])
        for index, (time, job) in enumerate(arrivals):
            # an arrival nominally due before the clock (burst jitter
            # overlapping the next anchor) fires now — deterministic,
            # since the chain structure never depends on horizons
            self.engine.call_at(
                max(time, self.engine.now),
                lambda j=job, s=stream, tail=(index == chain_index):
                    self._on_arrival(j, s, tail))

    def _on_arrival(self, job: Job, stream: ArrivalStream,
                    tail: bool) -> None:
        self._submit_now(job, source=stream.config.name)
        if tail:
            self._maybe_chain(stream)

    def _maybe_chain(self, stream: ArrivalStream) -> None:
        """Chain the stream's next emission, unless backpressured.

        At SATURATED and above the chain parks for ``defer_seconds``
        and re-checks — no new arrivals materialize while the queue
        sits past the saturation watermark, which is the service
        pushing back on its sources rather than buffering without
        bound.
        """
        if (self.overload is not None
                and self.overload_state >= OverloadState.SATURATED):
            self.chains_deferred += 1
            self.tracer.count("service.chain_deferred")
            self._admission_record(
                "defer", f"stream={stream.config.name} "
                         f"state={self.overload_state.label}")
            self.engine.call_after(
                self.overload.defer_seconds,
                lambda s=stream: self._maybe_chain(s))
            return
        self._chain(stream)

    def _submit_now(self, job: Job, source: str = "external") -> None:
        if self.admission is not None and job.gpu_demand > 0:
            if job.job_type in RESERVED_TYPES:
                # the reserved bypass: no policy is consulted, so no
                # policy can ever turn reserved work away (invariant 15)
                self.harness.checker.record_admission(
                    self.engine.now, job, True)
                self._admission_record(
                    "admit", f"{job.job_id} source={source} "
                             f"(reserved bypass)")
            else:
                decision = self.admission.decide(
                    job, source, self._admission_view())
                self.harness.checker.record_admission(
                    self.engine.now, job, decision.admitted)
                if not decision.admitted:
                    self.jobs_rejected += 1
                    self.tracer.count("service.rejected")
                    self._admission_record(
                        "reject", f"{job.job_id} source={source} "
                                  f"({decision.reason})")
                    return
                self.tracer.count("service.admitted")
                self._admission_record(
                    "admit", f"{job.job_id} source={source}")
        if (self._armed and job.gpu_demand > 0
                and job.job_type not in RESERVED_TYPES):
            self._origin[job.job_id] = source
            self._queued[job.job_id] = (source, self.engine.now)
            self._source_depth[source] = (
                self._source_depth.get(source, 0) + 1)
        self.scheduler.submit(job, at=self.engine.now)
        self.jobs_submitted += 1
        if self._armed:
            self._update_overload()

    def submit(self, job: Job) -> None:
        """Submit one externally supplied job (journaled).

        Goes through the same admission gate as stream arrivals, under
        the source name ``"external"``.
        """
        self._journal.append(["submit", job_to_dict(job)])
        self._submit_now(job)

    # -- overload machinery -------------------------------------------------

    def _admission_record(self, kind: str, detail: str) -> None:
        self.admission_log.append((self.engine.now, kind, detail))

    def _admission_view(self) -> AdmissionView:
        return AdmissionView(
            now=self.engine.now,
            queue_depth=len(self.scheduler.queue),
            best_effort_depth=len(self._queued),
            source_depths=dict(self._source_depth),
            overload=self.overload_state)

    def _on_scheduler_event(self, kind: str, job: Job) -> None:
        """Keep the best-effort queue tracker in sync (hook)."""
        if kind in ("start", "shed"):
            entry = self._queued.pop(job.job_id, None)
            if entry is not None:
                self._source_depth[entry[0]] -= 1
        elif kind == "preempt":
            source = self._origin.get(job.job_id)
            if source is not None:
                self._queued[job.job_id] = (source, self.engine.now)
                self._source_depth[source] = (
                    self._source_depth.get(source, 0) + 1)
        elif kind in ("finish", "fail"):
            self._origin.pop(job.job_id, None)
        if kind in ("start", "preempt", "shed"):
            self._update_overload()

    def _update_overload(self) -> None:
        depth = len(self.scheduler.queue)
        self.queue_depth_peak = max(self.queue_depth_peak, depth)
        if self.overload is None:
            return
        self._transition(
            self.overload.resolve(self.overload_state, depth), depth)

    def _transition(self, state: OverloadState, depth: int) -> None:
        if state is self.overload_state:
            return
        previous = self.overload_state
        self.overload_state = state
        if state >= OverloadState.SATURATED:
            if previous < OverloadState.SATURATED:
                self._saturated_since = self.engine.now
        else:
            self._saturated_since = None
        self._admission_record(
            "state", f"{previous.label}->{state.label} depth={depth}")
        self.tracer.set_gauge("service.overload_level", int(state))
        self.tracer.count(f"service.overload.{state.label}")
        if state is OverloadState.SHEDDING and self._shed_span is None:
            self._shed_span = self.tracer.begin(
                "overload:shedding", "service", depth=depth)
        elif (state is not OverloadState.SHEDDING
                and self._shed_span is not None):
            self.tracer.end(self._shed_span, depth=depth)
            self._shed_span = None

    def _shed_sweep(self) -> None:
        """Periodic reaper: expired deadlines always, age while
        SHEDDING — never reserved-class work (invariant 15)."""
        overload = self.overload
        assert overload is not None
        now = self.engine.now
        if (self.overload_state is OverloadState.SATURATED
                and self._saturated_since is not None
                and now - self._saturated_since
                >= overload.escalate_after_s):
            # backpressure is holding the depth below the shedding
            # watermark, but the queue has been saturated continuously
            # for the escalation interval: parked work is going stale
            self._transition(OverloadState.SHEDDING,
                             len(self.scheduler.queue))
        victims: list[tuple[Job, str, float]] = []
        for job in self.scheduler.queue:
            if job.job_type in RESERVED_TYPES:
                continue
            entry = self._queued.get(job.job_id)
            queued_at = (entry[1] if entry is not None
                         else job.submit_time)
            deadline = job.metadata.get("deadline")
            if deadline is not None and now > float(deadline):
                victims.append((job, "deadline", now - queued_at))
            elif (self.overload_state is OverloadState.SHEDDING
                    and now - queued_at > overload.shed_max_age_s):
                victims.append((job, "age", now - queued_at))
        for job, why, age in victims:
            self._shed(job, why, age)
        if victims:
            self._update_overload()
        self.engine.call_after(overload.sweep_interval_s,
                               self._shed_sweep)

    def _shed(self, job: Job, why: str, age: float) -> None:
        self.scheduler.shed_job(job.job_id, reason=f"shed:{why}")
        self.jobs_shed += 1
        self.tracer.count("service.shed")
        self.harness.checker.record_shed(self.engine.now, job)
        self._admission_record(
            "shed", f"{job.job_id} {why} age={age:.0f}s")

    def admission_log_text(self) -> str:
        """The admission decision log so far, as stable text lines."""
        return "\n".join(
            f"{time:12.3f}  {kind:<8} {detail}"
            for time, kind, detail in self.admission_log)

    # -- incremental operation --------------------------------------------

    def advance(self, until: float) -> ServiceGauges:
        """Run to simulated time ``until``; returns live gauges.

        Journaled.  Horizons are cumulative: any partitioning of a run
        into ``advance`` calls is event-for-event identical to one
        batch run to the final horizon.
        """
        self._journal.append(["advance", float(until)])
        self.harness.advance(until)
        return self.gauges()

    def gauges(self) -> ServiceGauges:
        """Sample the live operating gauges (pure read)."""
        return ServiceGauges(
            now=self.engine.now,
            queue_depth=len(self.scheduler.queue),
            gpus_busy=self.scheduler.gpus_allocated,
            pending_events=self.engine.pending,
            fault_backlog=sum(1 for fault in self.harness.faults
                              if fault.time > self.engine.now),
            jobs_submitted=self.jobs_submitted,
            jobs_finished=len(self.scheduler.finished),
            pretrain_iteration=self.harness.pretrain.iteration,
            events_processed=self.engine.events_processed,
            engine_digest=self.engine.snapshot().digest(),
            scheduler_digest=self.scheduler.state_digest(),
            overload_state=self.overload_state.label,
            jobs_rejected=self.jobs_rejected,
            jobs_shed=self.jobs_shed,
            chains_deferred=self.chains_deferred,
            queue_depth_peak=self.queue_depth_peak,
            admission_digest=text_digest(self.admission_log_text()),
        )

    def finish(self) -> ChaosResult:
        """Tear down and summarize; no further advances accepted."""
        return self.harness.finish()

    def event_log_text(self) -> str:
        """The harness event log so far, as stable text lines."""
        return "\n".join(
            f"{time:12.3f}  {kind:<18} {detail}"
            for time, kind, detail in self.harness.event_log)

    # -- checkpoint / restore ---------------------------------------------

    def checkpoint(self) -> int:
        """Persist a restorable snapshot; returns its generation.

        Routed through :class:`SyncCheckpointer`, so flaky storage is
        retried under the policy and an exhausted budget raises
        :class:`~repro.core.checkpoint.CheckpointError` — the service
        itself stays consistent and can keep advancing either way.
        """
        generation = self._next_generation
        self._clock.offset = 0.0
        try:
            self._checkpointer.save(generation,
                                    encode_state(self._state_payload()))
        finally:
            self.persist_stall_seconds += self._clock.offset
            self._clock.offset = 0.0
        self._next_generation = generation + 1
        return generation

    def _state_payload(self) -> dict[str, Any]:
        snapshot = self.engine.snapshot()
        return {
            "version": STATE_VERSION,
            "scenario": scenario_to_dict(self.scenario),
            "journal": self._journal,
            "engine": {
                "now": snapshot.now,
                "next_seq": snapshot.next_seq,
                "events_processed": snapshot.events_processed,
                "heap": [list(entry) for entry in snapshot.heap],
                "digest": snapshot.digest(),
            },
            "scheduler_digest": self.scheduler.state_digest(),
            "event_log_digest": text_digest(self.event_log_text()),
            "admission": (self.admission.to_config_dict()
                          if self.admission is not None else None),
            "overload": (self.overload.to_config_dict()
                         if self.overload is not None else None),
            "admission_log_digest": text_digest(
                self.admission_log_text()),
        }

    @classmethod
    def restore(cls, storage: Any, *,
                at_or_before: int | None = None,
                retry: RetryPolicy | None = None,
                tracer: TracerLike | None = None) -> "ClusterService":
        """Rebuild a service from its newest persisted snapshot.

        Walks generations through ``load_at_or_before`` (corrupt ones
        are quarantined, older generations are fallen back to), then
        replays the journal against a fresh service and verifies the
        engine heap, scheduler digest, and event-log digest all match
        what the snapshot recorded.  Raises
        :class:`~repro.core.checkpoint.StorageError` when storage is
        unreachable and :class:`ServiceStateError` when nothing
        readable exists or the replay diverges.
        """
        probe = SyncCheckpointer(storage,
                                 retry=retry or RetryPolicy(),
                                 clock=_VirtualClock(), tracer=tracer)
        loaded = probe.load_at_or_before(at_or_before)
        if loaded is None:
            raise ServiceStateError(
                "no readable service snapshot in storage")
        generation, state = loaded
        payload = decode_state(state)
        admission = payload.get("admission")
        overload = payload.get("overload")
        service = cls(
            scenario_from_dict(payload["scenario"]),
            storage=storage, retry=retry, tracer=tracer,
            admission=(policy_from_config(admission)
                       if admission is not None else None),
            overload=(OverloadConfig.from_config_dict(overload)
                      if overload is not None else None))
        service._replay(payload["journal"])
        service._verify(payload)
        service._next_generation = generation + 1
        return service

    def _replay(self, journal: list[list[Any]]) -> None:
        for entry in journal:
            op, arg = entry
            if op == "attach":
                self.attach_stream(stream_from_config(arg))
            elif op == "submit":
                self.submit(job_from_dict(arg))
            elif op == "advance":
                self.advance(arg)
            else:
                raise ServiceStateError(
                    f"unknown journal op {op!r}")

    def _verify(self, payload: dict[str, Any]) -> None:
        recorded = payload["engine"]
        snapshot = EngineSnapshot(
            now=recorded["now"], next_seq=recorded["next_seq"],
            events_processed=recorded["events_processed"],
            heap=tuple((float(time), int(seq), bool(cancelled))
                       for time, seq, cancelled in recorded["heap"]))
        # structural heap verification + clock/seq fast-forward;
        # raises SimulationError if the replay diverged
        self.engine.restore(snapshot)
        if snapshot.digest() != recorded["digest"]:
            raise ServiceStateError(
                f"engine digest mismatch after replay: "
                f"{snapshot.digest()} != {recorded['digest']}")
        scheduler_digest = self.scheduler.state_digest()
        if scheduler_digest != payload["scheduler_digest"]:
            raise ServiceStateError(
                f"scheduler state diverged after replay: "
                f"{scheduler_digest} != {payload['scheduler_digest']}")
        log_digest = text_digest(self.event_log_text())
        if log_digest != payload["event_log_digest"]:
            raise ServiceStateError(
                f"event log diverged after replay: "
                f"{log_digest} != {payload['event_log_digest']}")
        admission_digest = text_digest(self.admission_log_text())
        if admission_digest != payload["admission_log_digest"]:
            raise ServiceStateError(
                f"admission log diverged after replay: "
                f"{admission_digest} != "
                f"{payload['admission_log_digest']}")
