"""Saturation load-test harness for the streaming service.

Drives :class:`~repro.service.cluster.ClusterService` with arrival
rates swept *past* cluster capacity — 1× to several× the analytic
best-effort capacity — once per admission policy, and reports how each
policy degrades: goodput (jobs completed per hour), reject and shed
rates, chain deferrals, peak queue depth, and queue-age percentiles.

This is the "actually load-test at scale" half of the ROADMAP's
simulation-as-a-service item: the interesting regime is the one where
the offered load cannot possibly be served, and the contract under
test is the paper's §2.2 graceful degradation — reserved pretraining
work keeps running (chaos invariant 15 checks every decision live),
best-effort work queues up to a bound (invariant 16), and the rest is
turned away or shed, not buffered without end.

Run it via ``python -m repro loadtest`` (``--smoke`` is the CI
profile) or import :func:`run_loadtest` directly; the overload
benchmark profile in ``benchmarks/bench_service.py`` wraps one
saturated cell for the committed-baseline perf gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable

from repro.chaos.scenario import BUNDLED_SCENARIOS
from repro.obs.tracer import TracerLike
from repro.scheduler.job import FinalStatus
from repro.service.admission import (POLICY_KINDS, AcceptAllPolicy,
                                     AdmissionPolicy, OverloadConfig,
                                     QueueDepthCapPolicy,
                                     TokenBucketPolicy,
                                     WeightedQuotaPolicy)
from repro.service.cluster import ClusterService
from repro.workload.streams import (EvalBurstConfig, EvalBurstStream,
                                    PoissonJobStream,
                                    PoissonStreamConfig)

#: incremental horizons each cell is advanced in (exercises the same
#: advance() path production uses, not one monolithic run)
_HORIZONS_PER_CELL = 8


def capacity_jobs_per_hour(config: PoissonStreamConfig,
                           gpus: int) -> float:
    """Analytic arrival rate that saturates ``gpus``.

    Little's-law style: jobs/hour the pool can *complete* given the
    stream's mean GPU demand and mean duration.  The duration is
    lognormal base-2 around the median, so its mean carries the
    ``exp((sigma * ln 2)^2 / 2)`` stretch.
    """
    if gpus <= 0:
        raise ValueError("gpus must be positive")
    mean_gpus = sum(config.gpu_choices) / len(config.gpu_choices)
    sigma_ln = config.duration_sigma * math.log(2.0)
    mean_duration = (config.duration_median_s
                     * math.exp(sigma_ln * sigma_ln / 2.0))
    return gpus * 3600.0 / (mean_gpus * mean_duration)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


@dataclass(frozen=True)
class LoadTestCell:
    """One (policy, arrival-rate multiplier) run's outcome."""

    policy: str
    multiplier: float
    offered: int
    rejected: int
    shed: int
    completed: int
    goodput_per_hour: float
    chains_deferred: int
    queue_depth_peak: int
    queue_age_p50_s: float
    queue_age_p95_s: float
    final_state: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "multiplier": self.multiplier,
            "offered": self.offered,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "goodput_per_hour": self.goodput_per_hour,
            "chains_deferred": self.chains_deferred,
            "queue_depth_peak": self.queue_depth_peak,
            "queue_age_p50_s": self.queue_age_p50_s,
            "queue_age_p95_s": self.queue_age_p95_s,
            "final_state": self.final_state,
        }


@dataclass(frozen=True)
class LoadTestReport:
    """A full sweep: every policy at every multiplier."""

    scenario: str
    capacity_per_hour: float
    horizon_s: float
    slots: int
    cells: tuple[LoadTestCell, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "capacity_per_hour": self.capacity_per_hour,
            "horizon_s": self.horizon_s,
            "slots": self.slots,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _policy_builders(seed: int, capacity: float, slots: int
                     ) -> dict[str, Callable[[], AdmissionPolicy]]:
    """Fresh-instance builders (policies are stateful) per kind."""
    return {
        AcceptAllPolicy.kind: AcceptAllPolicy,
        QueueDepthCapPolicy.kind:
            lambda: QueueDepthCapPolicy(max_depth=slots),
        TokenBucketPolicy.kind:
            lambda: TokenBucketPolicy(rate_per_hour=capacity * 1.25,
                                      burst=float(slots), seed=seed),
        WeightedQuotaPolicy.kind:
            lambda: WeightedQuotaPolicy(
                slots=slots,
                weights={"lt-jobs": 3.0, "lt-evals": 1.0}),
    }


def _queue_ages(service: ClusterService) -> list[float]:
    """Queueing delays of started jobs + ages of jobs still queued."""
    now = service.engine.now
    started = {job.job_id: job for job in service.scheduler.started}
    ages = [job.queueing_delay for job in started.values()]
    ages.extend(now - job.submit_time
                for job in service.scheduler.queue)
    return ages


def run_loadtest(scenario_name: str = "smoke",
                 multipliers: Iterable[float] = (1.0, 2.0, 3.0, 4.0),
                 policy_kinds: Iterable[str] = POLICY_KINDS,
                 horizon_s: float | None = None,
                 slots: int | None = None,
                 seed: int | None = None,
                 tracer: TracerLike | None = None) -> LoadTestReport:
    """Sweep arrival-rate multipliers past capacity, per policy.

    Every cell runs the scenario's full chaos schedule underneath the
    synthetic overload, with the invariant checker armed — a reserved
    job rejected or shed, or a declared queue bound exceeded, aborts
    the sweep with an :class:`InvariantViolation` rather than
    producing a polluted report.
    """
    scenario = BUNDLED_SCENARIOS[scenario_name]
    if seed is not None:
        scenario = scenario.with_seed(seed)
    horizon = float(min(horizon_s or scenario.duration,
                        scenario.duration))
    # the harness runs the scheduler at reserved_fraction 0.5; the
    # best-effort stream is sized against the shared half
    shared_gpus = scenario.scheduler_gpus // 2
    base_config = PoissonStreamConfig(
        name="lt-jobs", seed=scenario.seed, rate_per_hour=1.0,
        job_type="debug", gpu_choices=(1, 2, 4),
        duration_median_s=600.0, duration_sigma=1.0)
    capacity = capacity_jobs_per_hour(base_config, shared_gpus)
    slot_count = slots if slots is not None else max(8, 2 * shared_gpus)
    overload = OverloadConfig(
        healthy_depth=max(1, slot_count // 4),
        pressured_depth=max(2, slot_count // 2),
        saturated_depth=slot_count,
        shedding_depth=slot_count + max(1, slot_count // 2),
        defer_seconds=180.0, shed_max_age_s=1200.0,
        sweep_interval_s=300.0)
    builders = _policy_builders(scenario.seed, capacity, slot_count)

    cells: list[LoadTestCell] = []
    for kind in policy_kinds:
        if kind not in builders:
            known = ", ".join(sorted(builders))
            raise ValueError(f"unknown policy kind {kind!r} "
                             f"(known: {known})")
        for multiplier in multipliers:
            job_config = replace(base_config,
                                 rate_per_hour=capacity * multiplier)
            streams = [
                PoissonJobStream(job_config),
                EvalBurstStream(EvalBurstConfig(
                    name="lt-evals", seed=scenario.seed,
                    bursts_per_hour=max(1.0, 2.0 * multiplier),
                    batch_size=6)),
            ]
            service = ClusterService(
                scenario, streams=streams, tracer=tracer,
                admission=builders[kind](), overload=overload)
            for step in range(1, _HORIZONS_PER_CELL + 1):
                gauges = service.advance(
                    horizon * step / _HORIZONS_PER_CELL)
            completed = sum(
                1 for job in service.scheduler.finished
                if job.final_status is FinalStatus.COMPLETED)
            ages = _queue_ages(service)
            cells.append(LoadTestCell(
                policy=kind, multiplier=float(multiplier),
                offered=(gauges.jobs_submitted
                         + gauges.jobs_rejected),
                rejected=gauges.jobs_rejected,
                shed=gauges.jobs_shed,
                completed=completed,
                goodput_per_hour=completed / (horizon / 3600.0),
                chains_deferred=gauges.chains_deferred,
                queue_depth_peak=gauges.queue_depth_peak,
                queue_age_p50_s=_percentile(ages, 0.50),
                queue_age_p95_s=_percentile(ages, 0.95),
                final_state=gauges.overload_state))
    return LoadTestReport(
        scenario=scenario.name, capacity_per_hour=capacity,
        horizon_s=horizon, slots=slot_count, cells=tuple(cells))


def render_report(report: LoadTestReport) -> str:
    """The sweep as an aligned text table."""
    lines = [
        f"scenario {report.scenario}  "
        f"capacity {report.capacity_per_hour:.1f} jobs/h  "
        f"horizon {report.horizon_s / 3600.0:.1f}h  "
        f"slots {report.slots}",
        f"{'policy':<16} {'mult':>5} {'offered':>8} {'rej':>6} "
        f"{'shed':>5} {'done':>5} {'goodput/h':>10} {'defer':>6} "
        f"{'peakQ':>6} {'p50 age':>8} {'p95 age':>8}  state",
    ]
    for cell in report.cells:
        lines.append(
            f"{cell.policy:<16} {cell.multiplier:>4.1f}x "
            f"{cell.offered:>8} {cell.rejected:>6} {cell.shed:>5} "
            f"{cell.completed:>5} {cell.goodput_per_hour:>10.1f} "
            f"{cell.chains_deferred:>6} {cell.queue_depth_peak:>6} "
            f"{cell.queue_age_p50_s:>7.0f}s {cell.queue_age_p95_s:>7.0f}s"
            f"  {cell.final_state}")
    return "\n".join(lines)
