"""Snapshot format for the streaming simulation service.

A :class:`~repro.service.cluster.ClusterService` snapshot is
*replay-based*: heap callbacks (closures over live scheduler state)
cannot be serialized, so the snapshot records what is sufficient to
rebuild them — the scenario, the op journal (every attach / submit /
advance since construction) — plus digests of the engine heap, the
scheduler state, and the event log that *prove* a replay reconverged.

The whole payload is canonical JSON wrapped in a one-key
``StateDict`` (a ``uint8`` array), so it rides the existing
``core/checkpoint.py`` persist pipeline unchanged: retries, optional
replication, checksum quarantine, and multi-generation fallback all
apply to service snapshots exactly as they do to training state.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, fields
from typing import Any

import numpy as np

from repro.chaos.scenario import ChaosScenario, InjectedFault
from repro.core.checkpoint import StateDict
from repro.scheduler.job import FinalStatus, Job, JobType

#: the single StateDict key a service snapshot occupies
STATE_KEY = "service_state"
#: version 2 added the admission/overload config and the admission
#: decision-log digest to the payload (overload-robust service PR)
STATE_VERSION = 2


class ServiceStateError(RuntimeError):
    """Raised when a service snapshot is malformed or a restore's
    replay diverges from the recorded digests."""


def text_digest(text: str) -> str:
    """crc32 content digest of ``text`` as fixed-width hex."""
    return f"{zlib.crc32(text.encode('utf-8')):08x}"


# -- scenario round-trip ---------------------------------------------------


def scenario_to_dict(scenario: ChaosScenario) -> dict[str, Any]:
    """The scenario as a JSON-serializable dict (tuples become lists)."""
    return asdict(scenario)


def _fault_from_dict(payload: dict[str, Any]) -> InjectedFault:
    kwargs = {key: tuple(value) if isinstance(value, list) else value
              for key, value in payload.items()}
    return InjectedFault(**kwargs)


def scenario_from_dict(payload: dict[str, Any]) -> ChaosScenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    JSON has no tuples, so every list field is converted back to the
    tuple type the frozen dataclass declares (including the nested
    ``faults`` override schedule).
    """
    kwargs: dict[str, Any] = {}
    for field in fields(ChaosScenario):
        if field.name not in payload:
            continue
        value = payload[field.name]
        if field.name == "faults":
            value = tuple(_fault_from_dict(entry) for entry in value)
        elif isinstance(value, list):
            value = tuple(tuple(entry) if isinstance(entry, list)
                          else entry for entry in value)
        kwargs[field.name] = value
    return ChaosScenario(**kwargs)


# -- job round-trip (external submissions recorded in the journal) ---------


def job_to_dict(job: Job) -> dict[str, Any]:
    """The scheduling-relevant job fields, JSON-serializable."""
    return {
        "job_id": job.job_id,
        "cluster": job.cluster,
        "job_type": job.job_type.value,
        "submit_time": job.submit_time,
        "duration": job.duration,
        "gpu_demand": job.gpu_demand,
        "cpu_demand": job.cpu_demand,
        "final_status": job.final_status.value,
        "gpu_utilization": job.gpu_utilization,
        # shedding reads metadata (deadlines), so replay needs it too
        "metadata": dict(job.metadata),
    }


def job_from_dict(payload: dict[str, Any]) -> Job:
    return Job(
        job_id=payload["job_id"],
        cluster=payload["cluster"],
        job_type=JobType(payload["job_type"]),
        submit_time=payload["submit_time"],
        duration=payload["duration"],
        gpu_demand=payload["gpu_demand"],
        cpu_demand=payload.get("cpu_demand", 0),
        final_status=FinalStatus(payload.get("final_status",
                                             "completed")),
        gpu_utilization=payload.get("gpu_utilization", 0.0),
        metadata=dict(payload.get("metadata", {})),
    )


# -- StateDict encoding ----------------------------------------------------


def encode_state(payload: dict[str, Any]) -> StateDict:
    """Wrap a snapshot payload as a checkpointable ``StateDict``."""
    blob = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return {STATE_KEY: np.frombuffer(blob, dtype=np.uint8).copy()}


def decode_state(state: StateDict) -> dict[str, Any]:
    """Unwrap and validate a persisted snapshot payload."""
    if STATE_KEY not in state:
        raise ServiceStateError(
            f"not a service snapshot: StateDict has keys "
            f"{sorted(state)} (expected {STATE_KEY!r})")
    payload = json.loads(bytes(state[STATE_KEY]).decode("utf-8"))
    version = payload.get("version")
    if version != STATE_VERSION:
        raise ServiceStateError(
            f"unsupported service snapshot version {version!r} "
            f"(this build reads version {STATE_VERSION})")
    return payload
