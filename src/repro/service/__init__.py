"""Simulation-as-a-service: a long-lived cluster under streaming load.

* ``cluster`` — :class:`ClusterService`: one persistent engine +
  scheduler + chaos/recovery stack, fed by open-ended arrival
  processes, advanced in incremental horizons with live gauges;
* ``state`` — the replay-based snapshot format that rides the
  ``core/checkpoint.py`` persist pipeline (retries, replication,
  quarantine) so the simulator can checkpoint *itself*.
"""

from repro.service.cluster import ClusterService, ServiceGauges
from repro.service.state import (STATE_KEY, STATE_VERSION,
                                 ServiceStateError, decode_state,
                                 encode_state, job_from_dict,
                                 job_to_dict, scenario_from_dict,
                                 scenario_to_dict, text_digest)

__all__ = [
    "ClusterService",
    "ServiceGauges",
    "ServiceStateError",
    "STATE_KEY",
    "STATE_VERSION",
    "decode_state",
    "encode_state",
    "job_from_dict",
    "job_to_dict",
    "scenario_from_dict",
    "scenario_to_dict",
    "text_digest",
]
