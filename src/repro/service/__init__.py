"""Simulation-as-a-service: a long-lived cluster under streaming load.

* ``cluster`` — :class:`ClusterService`: one persistent engine +
  scheduler + chaos/recovery stack, fed by open-ended arrival
  processes, advanced in incremental horizons with live gauges;
* ``admission`` — overload robustness: pluggable admission policies,
  hysteresis backpressure watermarks, and the
  ``HEALTHY → PRESSURED → SATURATED → SHEDDING`` state machine;
* ``loadtest`` — the saturation harness: sweeps arrival-rate
  multipliers past capacity and reports goodput / reject / shed
  rates and queue-age percentiles per policy;
* ``state`` — the replay-based snapshot format that rides the
  ``core/checkpoint.py`` persist pipeline (retries, replication,
  quarantine) so the simulator can checkpoint *itself*.
"""

from repro.service.admission import (POLICY_KINDS, RESERVED_TYPES,
                                     AcceptAllPolicy, AdmissionDecision,
                                     AdmissionPolicy, AdmissionView,
                                     OverloadConfig, OverloadState,
                                     QueueDepthCapPolicy,
                                     TokenBucketPolicy,
                                     WeightedQuotaPolicy,
                                     policy_from_config)
from repro.service.cluster import ClusterService, ServiceGauges
from repro.service.loadtest import (LoadTestCell, LoadTestReport,
                                    capacity_jobs_per_hour,
                                    render_report, run_loadtest)
from repro.service.state import (STATE_KEY, STATE_VERSION,
                                 ServiceStateError, decode_state,
                                 encode_state, job_from_dict,
                                 job_to_dict, scenario_from_dict,
                                 scenario_to_dict, text_digest)

__all__ = [
    "AcceptAllPolicy",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionView",
    "ClusterService",
    "LoadTestCell",
    "LoadTestReport",
    "OverloadConfig",
    "OverloadState",
    "POLICY_KINDS",
    "QueueDepthCapPolicy",
    "RESERVED_TYPES",
    "ServiceGauges",
    "ServiceStateError",
    "STATE_KEY",
    "STATE_VERSION",
    "TokenBucketPolicy",
    "WeightedQuotaPolicy",
    "capacity_jobs_per_hour",
    "decode_state",
    "encode_state",
    "job_from_dict",
    "job_to_dict",
    "policy_from_config",
    "render_report",
    "run_loadtest",
    "scenario_from_dict",
    "scenario_to_dict",
    "text_digest",
]
