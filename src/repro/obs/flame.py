"""Text flame summary: where did the simulated time go?

Aggregates spans by ``(category, name-with-ids-stripped)`` so the ten
thousand ``run:job-0042`` spans of one scenario fold into a single
``run:*`` row, then renders a fixed-width table sorted by total time.
The output is deterministic and diff-friendly — suitable for golden
files and quick terminal triage alike.
"""

from __future__ import annotations

import math
import re

from repro.obs.tracer import Tracer

#: ``name:specific-instance`` → ``name:*`` (one row per span family)
_INSTANCE_RE = re.compile(r":.+\Z")


def _family(name: str) -> str:
    return _INSTANCE_RE.sub(":*", name)


def flame_summary(tracer: Tracer, end_time: float | None = None,
                  bar_width: int = 24) -> str:
    """Render the per-family time table as text."""
    clip = tracer.end_time() if end_time is None else end_time
    durations: dict[tuple[str, str], list[float]] = {}
    unfinished: dict[tuple[str, str], int] = {}
    for span in tracer.spans:
        key = (span.category or "trace", _family(span.name))
        durations.setdefault(key, []).append(
            span.duration(clip_end=clip))
        if span.end is None:
            unfinished[key] = unfinished.get(key, 0) + 1

    if not durations:
        return "flame summary: no spans recorded"

    totals = {key: math.fsum(values)
              for key, values in durations.items()}
    # longest total first; name breaks ties so the order is stable
    order = sorted(totals, key=lambda key: (-totals[key], key))
    grand = math.fsum(totals.values()) or 1.0

    name_width = max(len(f"{cat}/{fam}") for cat, fam in order)
    header = (f"{'span':<{name_width}}  {'count':>6}  "
              f"{'total(s)':>12}  {'mean(s)':>10}  share")
    lines = [header, "-" * len(header)]
    for key in order:
        category, family = key
        values = durations[key]
        total = totals[key]
        share = total / grand
        bar = "#" * max(1, round(share * bar_width)) if total else ""
        label = f"{category}/{family}"
        open_note = (f" ({unfinished[key]} open)"
                     if key in unfinished else "")
        lines.append(
            f"{label:<{name_width}}  {len(values):>6}  "
            f"{total:>12.3f}  {total / len(values):>10.3f}  "
            f"{share:>6.1%} {bar}{open_note}")
    lines.append("-" * len(header))
    lines.append(
        f"{len(tracer.spans)} spans, {len(tracer.instants)} instants, "
        f"{len(tracer.counters)} counters, {len(tracer.gauges)} gauges; "
        f"trace end {clip:.3f}s")
    return "\n".join(lines)
