"""Tracers: the recording API instrumented code talks to.

Two implementations share one duck type:

* :class:`Tracer` — records spans, instants, counters, and gauges on a
  pluggable simulated clock (``attach`` binds it to an
  :class:`~repro.sim.engine.Engine` and registers a listener that
  counts executed events);
* :class:`NullTracer` — every method is a no-op returning shared
  immutable sentinels.  Instrumented modules default to the
  :data:`NULL_TRACER` singleton, so an untraced run pays one attribute
  load and one no-op call per instrumentation point — and produces
  byte-identical artifacts to a build without instrumentation.

The tracer never samples randomness and never reads the wall clock;
with a deterministic engine underneath, a seeded scenario traced twice
yields byte-identical exports.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Union

from repro.obs.metrics import Counter, Gauge
from repro.obs.span import Span
from repro.sim.engine import Engine


class _SpanScope:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._exit_scope(self._span)


class Tracer:
    """Records execution structure on the simulated clock."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock: Callable[[], float] = clock or (lambda: 0.0)
        self._ids = itertools.count(1)
        #: every begun span, in begin order (finished or not)
        self.spans: list[Span] = []
        #: zero-length point events, in record order
        self.instants: list[Span] = []
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        #: scope stack for :meth:`span`; provides parents for nesting
        self._scopes: list[Span] = []
        self._attached: list[tuple[Engine, Callable[[float], None]]] = []

    # -- clock ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return True

    @property
    def now(self) -> float:
        """Current simulated time according to the bound clock."""
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a different time source."""
        self._clock = clock

    def attach(self, engine: Engine) -> None:
        """Bind the clock to ``engine`` and count executed events.

        The listener only increments a counter; it never schedules, so
        attaching a tracer cannot perturb the simulation.
        """
        self.bind_clock(lambda: engine.now)
        events = self.counter("engine.events")

        def _on_event(now: float) -> None:
            events.add(1.0, at=now)

        engine.add_listener(_on_event)
        self._attached.append((engine, _on_event))

    def detach(self, engine: Engine) -> None:
        """Unregister this tracer's listener from ``engine``."""
        for index, (owner, listener) in enumerate(self._attached):
            if owner is engine:
                engine.remove_listener(listener)
                del self._attached[index]
                return

    # -- spans ------------------------------------------------------------

    def begin(self, name: str, category: str = "", *,
              at: float | None = None, **args: Any) -> Span:
        """Open a span; close it later with :meth:`end`.

        Use this (rather than :meth:`span`) when begin and end happen in
        different engine callbacks — a running job, a recovery round.
        """
        span = Span(span_id=next(self._ids), name=name, category=category,
                    start=self.now if at is None else at,
                    parent_id=(self._scopes[-1].span_id
                               if self._scopes else None),
                    args=dict(args))
        self.spans.append(span)
        return span

    def end(self, span: Span, *, at: float | None = None,
            **args: Any) -> None:
        """Close an open span (idempotent for the null span)."""
        if span.end is None:
            span.end = self.now if at is None else at
        if args:
            span.args.update(args)

    def span(self, name: str, category: str = "",
             **args: Any) -> _SpanScope:
        """Scoped span: ``with tracer.span("phase"): ...``.

        Spans opened inside the ``with`` body become children.
        """
        span = self.begin(name, category, **args)
        self._scopes.append(span)
        return _SpanScope(self, span)

    def _exit_scope(self, span: Span) -> None:
        self.end(span)
        if self._scopes and self._scopes[-1] is span:
            self._scopes.pop()

    def complete(self, name: str, start: float, end: float,
                 category: str = "", **args: Any) -> Span:
        """Record an already-known interval (analytic schedules)."""
        span = Span(span_id=next(self._ids), name=name, category=category,
                    start=start, end=end, args=dict(args))
        self.spans.append(span)
        return span

    def instant(self, name: str, category: str = "", *,
                at: float | None = None, **args: Any) -> Span:
        """Record a point event (a fault injection, a checkpoint)."""
        time = self.now if at is None else at
        span = Span(span_id=next(self._ids), name=name, category=category,
                    start=time, end=time, args=dict(args))
        self.instants.append(span)
        return span

    # -- metrics ----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The accumulating counter called ``name`` (created lazily)."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The level gauge called ``name`` (created lazily)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def count(self, name: str, delta: float = 1.0, *,
              at: float | None = None) -> None:
        """Shorthand: accumulate ``delta`` on counter ``name`` now."""
        self.counter(name).add(delta, at=self.now if at is None else at)

    def set_gauge(self, name: str, value: float, *,
                  at: float | None = None) -> None:
        """Shorthand: record level ``value`` on gauge ``name`` now."""
        self.gauge(name).set(value, at=self.now if at is None else at)

    # -- bookkeeping -------------------------------------------------------

    @property
    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended, in begin order."""
        return [span for span in self.spans if span.end is None]

    def end_time(self) -> float:
        """Latest timestamp observed anywhere in the trace."""
        times = [0.0]
        times.extend(span.start for span in self.spans)
        times.extend(span.end for span in self.spans
                     if span.end is not None)
        times.extend(span.start for span in self.instants)
        for timeline in list(self.counters.values()) + list(
                self.gauges.values()):
            if timeline.samples:
                times.append(timeline.samples[-1][0])
        return max(times)


#: shared immutable-by-convention span returned by the null tracer; its
#: fields are never written because every null method is a no-op
_NULL_SPAN = Span(span_id=0, name="", category="", start=0.0, end=0.0)


class _NullScope:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The disabled fast path: record nothing, allocate nothing."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    @property
    def now(self) -> float:
        return 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        return None

    def attach(self, engine: Engine) -> None:
        return None

    def detach(self, engine: Engine) -> None:
        return None

    def begin(self, name: str, category: str = "", *,
              at: float | None = None, **args: Any) -> Span:
        return _NULL_SPAN

    def end(self, span: Span, *, at: float | None = None,
            **args: Any) -> None:
        return None

    def span(self, name: str, category: str = "",
             **args: Any) -> _NullScope:
        return _NULL_SCOPE

    def complete(self, name: str, start: float, end: float,
                 category: str = "", **args: Any) -> Span:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "", *,
                at: float | None = None, **args: Any) -> Span:
        return _NULL_SPAN

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def count(self, name: str, delta: float = 1.0, *,
              at: float | None = None) -> None:
        return None

    def set_gauge(self, name: str, value: float, *,
                  at: float | None = None) -> None:
        return None


class _NullCounter(Counter):
    def add(self, delta: float, at: float) -> None:
        return None


class _NullGauge(Gauge):
    def set(self, value: float, at: float) -> None:
        return None


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")

#: the shared disabled tracer every instrumented module defaults to
NULL_TRACER = NullTracer()

#: what instrumented code should annotate its ``tracer`` parameter as
TracerLike = Union[Tracer, NullTracer]
