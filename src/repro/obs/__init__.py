"""Simulation observability: spans, counters, and trace export.

The paper's characterization rests on always-on cluster telemetry
(§2.3: DCGM, IPMI, Prometheus); ``repro.monitor`` models that *hardware*
side.  This package is the matching *execution* side: it records where
simulated time goes inside a run — which jobs held GPUs, how long each
checkpoint persist stalled, how a recovery round unfolded — as
structured spans and metric timelines on the **simulated clock**.

Design points:

* **Zero dependencies.** Only the standard library; traces serialize to
  the Chrome-trace / Perfetto JSON event format.
* **Simulated time.** A :class:`Tracer` reads its clock through a seam
  (usually ``engine.now``), so traces are byte-for-byte reproducible
  across runs of a seeded scenario.
* **Null fast path.** Every instrumented module defaults to
  :data:`NULL_TRACER`, whose methods are no-ops, so tracing costs
  ~nothing when disabled and golden artifacts are unaffected.

Entry points: attach a :class:`Tracer` to an engine (or pass one to
``ChaosHarness``), then export with
:func:`~repro.obs.export.chrome_trace_json` or summarize with
:func:`~repro.obs.flame.flame_summary`; the CLI wraps both as
``python -m repro trace <scenario>``.
"""

from repro.obs.export import chrome_trace, chrome_trace_json
from repro.obs.flame import flame_summary
from repro.obs.metrics import Counter, Gauge
from repro.obs.span import Span
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, TracerLike

__all__ = [
    "Counter",
    "Gauge",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TracerLike",
    "chrome_trace",
    "chrome_trace_json",
    "flame_summary",
]
