"""Counter and gauge timelines on the simulated clock.

Both record ``(time, value)`` samples in event order.  Consecutive
samples at the same simulated time are coalesced (the last write wins)
— many engine callbacks execute at one timestamp, and a timeline point
per callback would bloat traces without adding information.
"""

from __future__ import annotations


class Timeline:
    """Shared sample storage for counters and gauges."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        #: (time, value) in record order; times are non-decreasing
        self.samples: list[tuple[float, float]] = []

    def _record(self, at: float, value: float) -> None:
        if self.samples and self.samples[-1][0] == at:
            self.samples[-1] = (at, value)
        else:
            self.samples.append((at, value))

    @property
    def last(self) -> float:
        """Most recent value (0.0 before the first sample)."""
        return self.samples[-1][1] if self.samples else 0.0

    def __len__(self) -> int:
        return len(self.samples)


class Counter(Timeline):
    """A monotonically accumulating quantity (events seen, retries)."""

    def add(self, delta: float, at: float) -> None:
        """Accumulate ``delta`` at simulated time ``at``."""
        self._record(at, self.last + delta)


class Gauge(Timeline):
    """A point-in-time level (queue length, GPUs in use)."""

    def set(self, value: float, at: float) -> None:
        """Record the level ``value`` at simulated time ``at``."""
        self._record(at, value)
