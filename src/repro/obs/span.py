"""The span model: one named interval of simulated time.

A span is deliberately dumb data — the :class:`~repro.obs.tracer.Tracer`
owns the clock and the lifecycle; exporters own the rendering.  Spans
nest through ``parent_id`` (the enclosing span recorded by the tracer's
scope stack at begin time), which is how the flame summary attributes
self-time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One interval on the simulated clock.

    ``end`` stays ``None`` while the span is open; exporters clip open
    spans to the end of the trace and mark them ``unfinished`` rather
    than dropping the (often most interesting) interrupted work.
    """

    span_id: int
    name: str
    category: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    def duration(self, clip_end: float | None = None) -> float:
        """Span length; open spans are measured to ``clip_end``."""
        end = self.end if self.end is not None else clip_end
        if end is None:
            return 0.0
        return max(end - self.start, 0.0)
