"""Chrome-trace / Perfetto JSON export.

Produces the ``traceEvents`` JSON array format understood by
``chrome://tracing``, Perfetto, and speedscope:

* one ``X`` (complete) event per span — microsecond timestamps on the
  *simulated* clock;
* one ``i`` (instant) event per point event;
* one ``C`` (counter) event per counter/gauge sample;
* ``M`` (metadata) events naming the process and one pseudo-thread per
  span category, so categories render as separate tracks.

Everything about the output is deterministic: events are emitted in a
fixed sort order, JSON keys are sorted, and no wall-clock or id-based
value ever reaches the payload — a seeded scenario traced twice
produces byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.span import Span
from repro.obs.tracer import Tracer

_PID = 1
#: counters render on their own track below the span tracks
_COUNTER_TID = 0

_JSONScalar = Any


def _scalar(value: object) -> _JSONScalar:
    """Clamp an arg value to a JSON-stable scalar."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _args(span: Span) -> dict[str, _JSONScalar]:
    return {key: _scalar(value)
            for key, value in sorted(span.args.items())}


def _micros(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace(tracer: Tracer,
                 end_time: float | None = None) -> dict[str, Any]:
    """Render a tracer's recordings as a Chrome-trace object.

    ``end_time`` clips spans still open when the run stopped (they are
    kept, marked ``unfinished``); it defaults to the latest timestamp
    observed in the trace.
    """
    clip = tracer.end_time() if end_time is None else end_time
    categories = sorted(
        {span.category or "trace" for span in tracer.spans}
        | {span.category or "trace" for span in tracer.instants})
    tids = {category: index + 1
            for index, category in enumerate(categories)}

    events: list[dict[str, Any]] = [{
        "args": {"name": "repro-sim"},
        "name": "process_name",
        "ph": "M",
        "pid": _PID,
        "tid": _COUNTER_TID,
    }]
    for category in categories:
        events.append({
            "args": {"name": category},
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tids[category],
        })

    marks: list[dict[str, Any]] = []
    for span in sorted(tracer.spans,
                       key=lambda s: (s.start, s.span_id)):
        args = _args(span)
        if span.end is None:
            args["unfinished"] = True
        marks.append({
            "args": args,
            "cat": span.category or "trace",
            "dur": _micros(span.duration(clip_end=clip)),
            "name": span.name,
            "ph": "X",
            "pid": _PID,
            "tid": tids[span.category or "trace"],
            "ts": _micros(span.start),
        })
    for span in sorted(tracer.instants,
                       key=lambda s: (s.start, s.span_id)):
        marks.append({
            "args": _args(span),
            "cat": span.category or "trace",
            "name": span.name,
            "ph": "i",
            "pid": _PID,
            "s": "p",
            "tid": tids[span.category or "trace"],
            "ts": _micros(span.start),
        })
    events.extend(marks)

    for kind, timelines in (("counter", tracer.counters),
                            ("gauge", tracer.gauges)):
        for name in sorted(timelines):
            for time, value in timelines[name].samples:
                events.append({
                    "args": {"value": value},
                    "cat": kind,
                    "name": name,
                    "ph": "C",
                    "pid": _PID,
                    "tid": _COUNTER_TID,
                    "ts": _micros(time),
                })

    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated",
            "producer": "repro.obs",
        },
        "traceEvents": events,
    }


def chrome_trace_json(tracer: Tracer,
                      end_time: float | None = None) -> str:
    """The Chrome-trace object as canonical (byte-stable) JSON text."""
    payload = chrome_trace(tracer, end_time=end_time)
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"
