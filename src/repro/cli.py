"""Command-line interface.

Subcommands::

    acme-repro generate-trace --cluster kalos --jobs 10000 --out t.csv
    acme-repro analyze t.csv
    acme-repro diagnose runtime.log
    acme-repro evalsched --nodes 4
    acme-repro checkpoint --model 123b --gpus 2048
    acme-repro report --jobs 6000
    acme-repro chaos --scenario smoke --seed 0
    acme-repro serve --scenario storage-storm --horizons 3 --selfcheck
    acme-repro loadtest --smoke
    acme-repro trace storage-storm --seed 0 --out trace.json
    acme-repro lint src --format json

(``python -m repro ...`` works identically.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.analysis.report import render_key_values, render_table


def _bundled_scenario_names() -> list[str]:
    from repro.chaos import BUNDLED_SCENARIOS

    return list(BUNDLED_SCENARIOS)


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    from repro.workload.generator import TraceGenerator
    from repro.workload.spec import KALOS_SPEC, SEREN_SPEC

    spec = {"seren": SEREN_SPEC, "kalos": KALOS_SPEC}[args.cluster]
    trace = TraceGenerator(spec, seed=args.seed).generate(
        args.jobs, include_cpu_jobs=args.cpu_jobs)
    out = Path(args.out)
    if out.suffix == ".jsonl":
        trace.to_jsonl(out)
    else:
        trace.to_csv(out)
    print(f"wrote {len(trace)} jobs to {out}")
    return 0


def _load_trace(path: str):
    from repro.workload.trace import Trace

    file_path = Path(path)
    if file_path.suffix == ".jsonl":
        return Trace.from_jsonl(file_path)
    return Trace.from_csv(file_path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    count = trace.count_share_by_type()
    time_share = trace.gpu_time_share_by_type()
    rows = [{"type": job_type.value,
             "count_share": count.get(job_type, 0.0),
             "gpu_time_share": time_share.get(job_type, 0.0)}
            for job_type in count]
    print(render_table(rows, title=f"workload mix ({trace.cluster}, "
                                   f"{len(trace)} jobs)"))
    durations = trace.durations()
    print(render_key_values({
        "median duration (s)": float(np.median(durations)),
        "mean duration (s)": float(durations.mean()),
        "mean GPUs/job": trace.mean_gpu_demand(),
        "median GPU utilization":
            float(np.median(trace.utilizations())),
    }, title="headline statistics"))
    statuses = trace.status_counts()
    total = sum(statuses.values())
    print(render_key_values(
        {status.value: count / total
         for status, count in statuses.items()},
        title="final statuses (count share)"))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.diagnosis import DiagnosisSystem

    lines = Path(args.logfile).read_text(errors="replace").splitlines()
    system = DiagnosisSystem()
    diagnosis = system.diagnose(lines)
    print(render_key_values({
        "root cause": diagnosis.reason,
        "category": diagnosis.category.value,
        "recoverable by restart": diagnosis.recoverable,
        "diagnosis path": diagnosis.path,
        "confidence": diagnosis.confidence,
        "log compression ratio":
            diagnosis.compression.compression_ratio,
    }, title=f"diagnosis of {args.logfile}"))
    print(f"\nmitigation: {diagnosis.mitigation}")
    return 0 if diagnosis.reason != "Unknown" else 1


def _cmd_evalsched(args: argparse.Namespace) -> int:
    from repro.core.evalsched import CoordinatorConfig, TrialCoordinator
    from repro.evaluation import standard_catalog

    outcome = TrialCoordinator(CoordinatorConfig(
        n_nodes=args.nodes)).compare(standard_catalog(args.model_scale))
    print(render_key_values({
        "datasets": 63,
        "nodes": args.nodes,
        "baseline makespan (min)":
            outcome["baseline"].makespan / 60.0,
        "decoupled makespan (min)":
            outcome["decoupled"].makespan / 60.0,
        "speedup": outcome["speedup"],
    }, title="§6.2 evaluation round"))
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.cluster.storage import SharedStorage
    from repro.core.checkpoint import CheckpointCostModel
    from repro.training import model as models

    catalog = {"7b": models.MODEL_7B, "13b": models.MODEL_13B,
               "30b": models.MODEL_30B, "104b": models.MODEL_104B,
               "123b": models.MODEL_123B}
    config = catalog[args.model]
    storage = SharedStorage(backend_bandwidth=800e9,
                            node_nic_bandwidth=25e9)
    cost = CheckpointCostModel(storage).cost(config, args.gpus)
    print(render_key_values({
        "model": config.describe(),
        "model state (TB)": config.model_state_bytes / 1e12,
        "sync blocking (s)": cost.sync_blocking,
        "async blocking (s)": cost.async_blocking,
        "blocking reduction": cost.reduction,
        "async overhead @30min": cost.overhead_fraction(1800.0, True),
    }, title="§6.1 checkpoint cost"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.chaos import (BUNDLED_SCENARIOS, InvariantViolation,
                             run_scenario)

    scenario_name = args.scenario
    overrides = {}
    if args.network_faults is not None:
        # Accepts either a fault count ("--network-faults 4") or the
        # name of a network-centric bundled scenario to switch to.
        if args.network_faults in BUNDLED_SCENARIOS:
            scenario_name = args.network_faults
        else:
            try:
                overrides["n_network_faults"] = int(args.network_faults)
            except ValueError:
                print("--network-faults expects an integer or one of: "
                      + ", ".join(sorted(BUNDLED_SCENARIOS)))
                return 2
    scenario = BUNDLED_SCENARIOS[scenario_name]
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.duration_hours is not None:
        overrides["duration"] = args.duration_hours * 3600.0
    if args.faults is not None:
        overrides["n_faults"] = args.faults
    if args.storage_faults is not None:
        overrides["n_storage_faults"] = args.storage_faults
    if args.straggler_faults is not None:
        overrides["n_straggler_faults"] = args.straggler_faults
    if args.power_faults is not None:
        overrides["n_power_faults"] = args.power_faults
    if args.hot_spares is not None:
        overrides["hot_spares"] = args.hot_spares
    if overrides:
        try:
            scenario = replace(scenario, **overrides)
        except ValueError as error:
            print(f"invalid override: {error}")
            return 2
    try:
        result = run_scenario(scenario)
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}")
        return 2
    if args.log:
        print(result.event_log_text())
        print()
    print(result.summary.render())
    if args.json_out:
        Path(args.json_out).write_text(json.dumps({
            "summary": json.loads(result.summary.to_json()),
            "event_log": result.event_log_lines(),
        }, indent=2, sort_keys=True))
        print(f"\nwrote event log + summary to {args.json_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.chaos import BUNDLED_SCENARIOS, InvariantViolation
    from repro.service import ClusterService
    from repro.workload.streams import (EvalBurstConfig, EvalBurstStream,
                                        PoissonJobStream,
                                        PoissonStreamConfig)

    if args.horizons < 1:
        print(f"invalid override: --horizons must be >= 1, "
              f"got {args.horizons}")
        return 2
    if args.jobs_per_hour < 0 or args.eval_bursts_per_hour < 0:
        print("invalid override: arrival rates must be >= 0")
        return 2
    scenario = BUNDLED_SCENARIOS[args.scenario]
    if args.seed is not None:
        scenario = replace(scenario, seed=args.seed)
    streams = []
    if args.jobs_per_hour > 0:
        streams.append(PoissonJobStream(PoissonStreamConfig(
            name="sft", seed=scenario.seed,
            rate_per_hour=args.jobs_per_hour)))
    if args.eval_bursts_per_hour > 0:
        streams.append(EvalBurstStream(EvalBurstConfig(
            name="evals", seed=scenario.seed,
            bursts_per_hour=args.eval_bursts_per_hour,
            batch_size=args.eval_batch)))
    service = ClusterService(scenario, streams=streams)
    horizon = scenario.duration / args.horizons
    rows = []
    try:
        for step in range(1, args.horizons + 1):
            until = (scenario.duration if step == args.horizons
                     else horizon * step)
            gauges = service.advance(until)
            rows.append(gauges.to_dict())
            print(render_key_values(gauges.to_dict(),
                                    title=f"horizon {step}/"
                                          f"{args.horizons}"))
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}")
        return 2
    if args.selfcheck:
        # snapshot, restore, advance both services one extra horizon,
        # and require byte-identical digests — the CI smoke path
        generation = service.checkpoint()
        restored = ClusterService.restore(service.storage)
        extra = scenario.duration + horizon
        ahead = service.advance(extra)
        behind = restored.advance(extra)
        if ahead != behind:
            print("SELFCHECK FAILED: restored service diverged\n"
                  f"  original: {ahead.to_dict()}\n"
                  f"  restored: {behind.to_dict()}")
            return 2
        print(f"selfcheck ok: generation {generation} restored and "
              f"re-advanced to t={extra:.0f}s byte-identically "
              f"(engine digest {ahead.engine_digest})")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(rows, indent=2, sort_keys=True))
        print(f"\nwrote gauge timeline to {args.json_out}")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.chaos import InvariantViolation
    from repro.service import POLICY_KINDS, render_report, run_loadtest

    if args.smoke:
        multipliers: list[float] = [1.0, 3.0]
        horizon_s: float | None = 2.0 * 3600.0
    else:
        try:
            multipliers = [float(part)
                           for part in args.multipliers.split(",")
                           if part]
        except ValueError:
            print("--multipliers expects a comma-separated list of "
                  "numbers, e.g. 1,2,3.5")
            return 2
        horizon_s = (args.horizon_hours * 3600.0
                     if args.horizon_hours is not None else None)
    if not multipliers or min(multipliers) <= 0:
        print("--multipliers expects positive values")
        return 2
    policy_kinds = [part for part in args.policies.split(",") if part]
    unknown = sorted(set(policy_kinds) - set(POLICY_KINDS))
    if unknown:
        print(f"unknown policies: {', '.join(unknown)} "
              f"(known: {', '.join(POLICY_KINDS)})")
        return 2
    try:
        report = run_loadtest(
            scenario_name=args.scenario, multipliers=multipliers,
            policy_kinds=policy_kinds, horizon_s=horizon_s,
            slots=args.slots, seed=args.seed)
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}")
        return 2
    print(render_report(report))
    if args.smoke:
        saturated = [cell for cell in report.cells
                     if cell.multiplier >= 3.0]
        turned_away = sum(cell.rejected + cell.shed
                          + cell.chains_deferred for cell in saturated)
        if not saturated or turned_away == 0:
            print("\nSMOKE FAILED: no admission pushback at >=3x "
                  "capacity — overload machinery appears inert")
            return 2
        print(f"\nsmoke ok: {turned_away} reject/shed/defer decisions "
              f"across {len(saturated)} saturated cells, reserved "
              f"work untouched (invariants 15-16 held)")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True))
        print(f"\nwrote load-test report to {args.json_out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import run_sweep

    try:
        seeds = [int(part) for part in args.seeds.split(",") if part]
    except ValueError:
        print("--seeds expects a comma-separated list of integers")
        return 2
    try:
        result = run_sweep(args.scenario, seeds, workers=args.workers)
    except ValueError as error:
        print(f"invalid sweep: {error}")
        return 2
    merged = result.merged()
    print(render_key_values({
        "scenario": args.scenario,
        "seeds": ",".join(str(seed) for seed in result.seeds),
        "workers": args.workers,
        "faults injected": merged.get("faults_injected", 0),
        "restarts": merged.get("restarts", 0),
        "pretrain iterations": merged.get("pretrain_iterations", 0),
        "digest": result.digest(),
    }, title=f"seed sweep ({len(result.runs)} runs)"))
    if args.json_out:
        Path(args.json_out).write_text(result.to_json())
        print(f"\nwrote merged sweep to {args.json_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.chaos import (BUNDLED_SCENARIOS, ChaosHarness,
                             InvariantViolation)
    from repro.obs import Tracer, chrome_trace_json, flame_summary

    scenario = BUNDLED_SCENARIOS[args.scenario]
    if args.seed is not None:
        scenario = replace(scenario, seed=args.seed)
    tracer = Tracer()
    harness = ChaosHarness(scenario, tracer=tracer)
    try:
        harness.run()
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}")
        return 2
    payload = chrome_trace_json(tracer, end_time=scenario.duration)
    out = Path(args.out)
    out.write_text(payload)
    print(flame_summary(tracer, end_time=scenario.duration))
    print(f"\nwrote Chrome-trace JSON ({len(payload)} bytes, "
          f"{len(tracer.spans)} spans) to {out}")
    print("open it in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import runner

    return runner.main(args)


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.workload.validate import calibration_report

    trace = _load_trace(args.trace)
    report, passed = calibration_report(trace)
    print(report)
    return 0 if passed else 1


def _cmd_export_figures(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_all

    written = export_all(args.outdir, n_jobs=args.jobs, seed=args.seed)
    print(f"wrote {len(written)} files to {args.outdir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="acme-repro",
        description="Reproduction of 'Characterization of LLM Development "
                    "in the Datacenter' (NSDI '24)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-trace",
                         help="generate a synthetic Acme job trace")
    gen.add_argument("--cluster", choices=("seren", "kalos"),
                     default="kalos")
    gen.add_argument("--jobs", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--cpu-jobs", action="store_true",
                     help="include CPU-only jobs")
    gen.add_argument("--out", default="trace.csv",
                     help=".csv or .jsonl output path")
    gen.set_defaults(func=_cmd_generate_trace)

    analyze = sub.add_parser("analyze",
                             help="characterize a trace file")
    analyze.add_argument("trace")
    analyze.set_defaults(func=_cmd_analyze)

    diagnose = sub.add_parser(
        "diagnose", help="root-cause a job's runtime log (§6.1)")
    diagnose.add_argument("logfile")
    diagnose.set_defaults(func=_cmd_diagnose)

    evalsched = sub.add_parser(
        "evalsched", help="run the §6.2 makespan experiment")
    evalsched.add_argument("--nodes", type=int, default=4)
    evalsched.add_argument("--model-scale", type=float, default=1.0)
    evalsched.set_defaults(func=_cmd_evalsched)

    checkpoint = sub.add_parser(
        "checkpoint", help="§6.1 checkpoint blocking-time model")
    checkpoint.add_argument("--model", default="123b",
                            choices=("7b", "13b", "30b", "104b", "123b"))
    checkpoint.add_argument("--gpus", type=int, default=2048)
    checkpoint.set_defaults(func=_cmd_checkpoint)

    chaos = sub.add_parser(
        "chaos", help="run a live fault-injection scenario (§6.1)")
    chaos.add_argument("--scenario", default="smoke",
                       choices=sorted(_bundled_scenario_names()))
    chaos.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
    chaos.add_argument("--duration-hours", type=float, default=None,
                       help="override the simulated horizon")
    chaos.add_argument("--faults", type=int, default=None,
                       help="override the number of injected faults")
    chaos.add_argument("--network-faults", default=None,
                       metavar="N|SCENARIO",
                       help="override the network fault count, or name "
                            "a network scenario (e.g. network-storm)")
    chaos.add_argument("--storage-faults", type=int, default=None,
                       help="override the number of storage faults")
    chaos.add_argument("--straggler-faults", type=int, default=None,
                       help="override the number of straggler / "
                            "silent-degrader faults")
    chaos.add_argument("--power-faults", type=int, default=None,
                       help="override the number of power-cap faults")
    chaos.add_argument("--hot-spares", type=int, default=None,
                       help="override the warm standby pool size")
    chaos.add_argument("--log", action="store_true",
                       help="print the full event log")
    chaos.add_argument("--json-out", default=None,
                       help="write event log + summary as JSON")
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve", help="operate a long-lived cluster under streaming "
                      "load in incremental horizons (docs/SERVICE.md)")
    serve.add_argument("--scenario", default="smoke",
                       choices=sorted(_bundled_scenario_names()))
    serve.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
    serve.add_argument("--horizons", type=int, default=3,
                       help="number of incremental advance() horizons")
    serve.add_argument("--jobs-per-hour", type=float, default=30.0,
                       help="Poisson job-arrival rate (0 disables)")
    serve.add_argument("--eval-bursts-per-hour", type=float,
                       default=2.0,
                       help="eval-burst arrival rate (0 disables)")
    serve.add_argument("--eval-batch", type=int, default=8,
                       help="trials per eval burst")
    serve.add_argument("--selfcheck", action="store_true",
                       help="snapshot, restore, advance again, and "
                            "compare digests (exit 2 on divergence)")
    serve.add_argument("--json-out", default=None,
                       help="write the gauge timeline as JSON")
    serve.set_defaults(func=_cmd_serve)

    loadtest = sub.add_parser(
        "loadtest", help="sweep arrival rates past capacity per "
                         "admission policy (docs/SERVICE.md)")
    loadtest.add_argument("--scenario", default="smoke",
                          choices=sorted(_bundled_scenario_names()))
    loadtest.add_argument("--multipliers", default="1,2,3,4",
                          help="comma-separated arrival-rate multiples "
                               "of analytic capacity")
    loadtest.add_argument("--policies",
                          default="accept-all,queue-depth,"
                                  "token-bucket,weighted-quota",
                          help="comma-separated admission policy kinds")
    loadtest.add_argument("--horizon-hours", type=float, default=None,
                          help="simulated hours per cell (default: "
                               "the scenario's full duration)")
    loadtest.add_argument("--slots", type=int, default=None,
                          help="best-effort slot budget (sets the "
                               "overload watermarks)")
    loadtest.add_argument("--seed", type=int, default=None,
                          help="override the scenario's seed")
    loadtest.add_argument("--smoke", action="store_true",
                          help="CI profile: 1x and 3x over 2h; exit 2 "
                               "unless saturation produced pushback")
    loadtest.add_argument("--json-out", default=None,
                          help="write the report as JSON")
    loadtest.set_defaults(func=_cmd_loadtest)

    sweep = sub.add_parser(
        "sweep", help="run a chaos scenario under many seeds in "
                      "parallel; merge deterministically")
    sweep.add_argument("--scenario", default="smoke",
                       choices=sorted(_bundled_scenario_names()))
    sweep.add_argument("--seeds", default="0,1,2,3",
                       help="comma-separated seed list")
    sweep.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = serial)")
    sweep.add_argument("--json-out", default=None,
                       help="write the merged artifact as JSON")
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser(
        "trace", help="run a chaos scenario under the tracer; export "
                      "a Chrome-trace JSON (docs/OBSERVABILITY.md)")
    trace.add_argument("scenario", nargs="?", default="smoke",
                       choices=sorted(_bundled_scenario_names()),
                       help="bundled scenario to trace")
    trace.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome-trace JSON output path")
    trace.set_defaults(func=_cmd_trace)

    lint = sub.add_parser(
        "lint", help="reprolint: determinism & sim-safety static "
                     "analysis (docs/LINT.md)")
    from repro.devtools.lint.runner import add_arguments
    add_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    validate = sub.add_parser(
        "validate", help="check a trace against the paper's anchors")
    validate.add_argument("trace")
    validate.set_defaults(func=_cmd_validate)

    export = sub.add_parser(
        "export-figures", help="render every figure as SVG + CSV")
    export.add_argument("--outdir", default="figures")
    export.add_argument("--jobs", type=int, default=6000)
    export.add_argument("--seed", type=int, default=0)
    export.set_defaults(func=_cmd_export_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. `... | head`); exit quietly like any
        # well-behaved Unix filter instead of tracebacking.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
