"""repro — reproduction of "Characterization of Large Language Model
Development in the Datacenter" (NSDI '24).

Subpackages
-----------
``repro.sim``        discrete-event simulation engine
``repro.cluster``    hardware model (nodes, GPUs, network, storage)
``repro.scheduler``  quota-reservation cluster scheduler
``repro.workload``   synthetic Acme + baseline-datacenter traces
``repro.training``   distributed-pretraining simulator
``repro.monitor``    DCGM/IPMI/Prometheus telemetry + carbon accounting
``repro.failures``   Table 3 taxonomy, injection, runtime logs
``repro.core``       the paper's systems: async checkpointing, failure
                     diagnosis, recovery, decoupled evaluation scheduling
``repro.evaluation`` benchmark-dataset catalog + trial model
``repro.analysis``   regenerates every paper table and figure

See DESIGN.md for the full system inventory and per-experiment index.
"""

__version__ = "1.0.0"
