"""The global fast-path switch for the simulation stack.

Several hot paths in the simulator ship two implementations:

* a **reference** path — the original, straightforward code whose
  behaviour the chaos golden traces pin;
* a **fast** path — an optimized implementation (numpy water-filling,
  bisect timeline lookups, bucketed scheduler candidates, batched
  samplers) that must be *behaviour-preserving*: for everything the
  event log and golden traces observe, fast and reference runs are
  byte-identical.

This module owns the single switch both paths consult.  The fast path
is **on by default** — the reference path exists so the equivalence
test harness (``tests/test_fastpath_equivalence.py``) can run any
scenario under both and diff the artifacts, and so a suspected
fast-path bug can be bisected away with one call.

The switch is deliberately global rather than threaded through every
constructor: the equivalence guarantee is all-or-nothing (mixing paths
inside one run proves nothing), and the simulation is single-threaded
by design.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def fast_path_enabled() -> bool:
    """Whether optimized implementations should be used."""
    return _ENABLED


def set_fast_path(enabled: bool) -> bool:
    """Set the switch; returns the previous value (for restore)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def use_fast_path(enabled: bool) -> Iterator[None]:
    """Scoped override: ``with use_fast_path(False): run_scenario(...)``."""
    previous = set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)
