"""Discrete-event simulation substrate.

The paper's characterization is built on a real datacenter; we replay the
same logic on a deterministic discrete-event engine.  Everything in the
repository that involves time — the cluster scheduler, the evaluation
coordinator, failure injection, checkpointing — runs on :class:`Engine`.
"""

from repro.sim.engine import (Engine, EngineSnapshot, Event, Process,
                              Resource)
from repro.sim.distributions import (
    Distribution,
    Constant,
    Uniform,
    Exponential,
    LogNormal,
    Pareto,
    Empirical,
    Mixture,
    Choice,
    lognormal_from_median_mean,
)

__all__ = [
    "Engine",
    "EngineSnapshot",
    "Event",
    "Process",
    "Resource",
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "LogNormal",
    "Pareto",
    "Empirical",
    "Mixture",
    "Choice",
    "lognormal_from_median_mean",
]
