"""A small deterministic discrete-event simulation engine.

The engine is a classic event-heap simulator: callbacks are scheduled at
absolute simulated times and executed in time order.  Ties are broken by a
monotonically increasing sequence number so that runs are fully
deterministic.

Two convenience abstractions are layered on top:

``Process``
    A generator-based coroutine.  The generator yields delays (floats) or
    :class:`Event` objects; the engine resumes it when the delay elapses or
    the event fires.  This mirrors how long-running activities (a training
    job, a checkpoint writer, a coordinator loop) are expressed.

``Resource``
    A counted resource with a FIFO wait queue (e.g. GPUs on a node).

The engine is intentionally single-threaded and has no wall-clock
dependency, which keeps every experiment in the repository reproducible.
"""

from __future__ import annotations

import heapq
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

#: lazy-deletion compaction thresholds: the heap is rebuilt when at
#: least this many cancelled items are buried in it *and* they make up
#: at least half of it.  Compaction is pure bookkeeping — (time, seq)
#: is a strict total order, so heapify reproduces the exact pop order.
_COMPACT_MIN_CANCELLED = 256


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class _ScheduledItem:
    """One heap entry.

    A slotted plain class rather than a dataclass: the generated
    ``order=True`` ``__lt__`` allocates a comparison tuple per call,
    and heap sift operations compare items millions of times in a
    full-trace run.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "in_heap")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # Whether this item is physically buried in the heap.  The
        # garbage counter only tracks cancelled items that are *still
        # in the heap*; cancelling an item after it was popped (its
        # time was reached but another same-timestamp callback killed
        # it before dispatch) must not count as buried garbage, or
        # ``pending`` drifts negative.
        self.in_heap = False

    def __lt__(self, other: "_ScheduledItem") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"_ScheduledItem(time={self.time!r}, seq={self.seq!r}, "
                f"cancelled={self.cancelled!r})")


@dataclass(frozen=True)
class EngineSnapshot:
    """A picklable structural snapshot of an :class:`Engine`.

    Heap callbacks are arbitrary closures and cannot be serialized, so
    the snapshot captures the *restorable* scalars (clock, sequence
    counter, event count) plus the heap's structural identity: every
    buried item's ``(time, seq, cancelled)`` triple in canonical
    (time, seq) order.  Restoring is replay-based — the caller rebuilds
    the engine by replaying the operations that produced this snapshot,
    then :meth:`Engine.restore` proves the rebuilt heap is structurally
    identical and fast-forwards the scalars (see ``repro.service``).
    """

    now: float
    next_seq: int
    events_processed: int
    #: every live-or-cancelled heap entry as (time, seq, cancelled),
    #: sorted by the engine's strict (time, seq) total order so the
    #: snapshot is independent of internal heap-array layout
    heap: tuple[tuple[float, int, bool], ...]

    def digest(self) -> str:
        """Deterministic content digest (crc32 of the canonical repr)."""
        canonical = repr((self.now, self.next_seq,
                          self.events_processed, self.heap))
        return f"{zlib.crc32(canonical.encode('utf-8')):08x}"


class Event:
    """A one-shot event that processes can wait on.

    An event carries an optional ``value`` set when it is succeeded.  Waiting
    processes are resumed in the order they subscribed.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "value")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event fires.

        If the event already fired, the callback is scheduled immediately
        (at the current simulated time) rather than being lost.
        """
        if self.triggered:
            self.engine.call_at(self.engine.now, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> None:
        """Fire the event, waking all subscribers at the current time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.engine.call_at(self.engine.now, lambda cb=callback: cb(self))


ProcessGenerator = Generator[Any, Any, Any]


class Process:
    """A generator-based simulated activity.

    The wrapped generator may yield:

    * a non-negative ``float``/``int`` — sleep for that many simulated
      seconds;
    * an :class:`Event` — suspend until the event fires; the event's value is
      sent back into the generator.

    When the generator returns, :attr:`done` fires with the return value.
    """

    __slots__ = ("engine", "generator", "done", "name")

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.done = Event(engine)
        self.name = name or getattr(generator, "__name__", "process")
        engine.call_at(engine.now, lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        if isinstance(yielded, Event):
            yielded.subscribe(lambda event: self._step(event.value))
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: "
                    f"{yielded!r}")
            self.engine.call_at(self.engine.now + float(yielded),
                                lambda: self._step(None))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unsupported value: "
                f"{yielded!r}")


class Resource:
    """A counted resource with FIFO waiters.

    ``acquire(n)`` returns an :class:`Event` that fires once ``n`` units are
    granted; ``release(n)`` returns units and wakes eligible waiters in FIFO
    order (head-of-line blocking is intentional — it mirrors how a quota
    behaves in the paper's clusters; schedulers that want backfill implement
    it above this primitive).
    """

    __slots__ = ("engine", "capacity", "available", "_waiters")

    def __init__(self, engine: "Engine", capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.engine = engine
        self.capacity = capacity
        self.available = capacity
        # deque, not list: _drain pops from the head, and a chaos storm
        # can park thousands of waiters here — list.pop(0) made every
        # drain O(queue length)
        self._waiters: deque[tuple[int, Event]] = deque()

    def acquire(self, amount: int = 1) -> Event:
        """Request units; the returned event fires when granted."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise SimulationError(
                f"requested {amount} units from a resource of capacity "
                f"{self.capacity}")
        event = Event(self.engine)
        self._waiters.append((amount, event))
        self._drain()
        return event

    def release(self, amount: int = 1) -> None:
        """Return units and wake eligible waiters."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.available += amount
        if self.available > self.capacity:
            raise SimulationError("released more units than were acquired")
        self._drain()

    def _drain(self) -> None:
        while self._waiters and self._waiters[0][0] <= self.available:
            amount, event = self._waiters.popleft()
            self.available -= amount
            event.succeed(amount)

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Engine:
    """The event loop.

    Typical use::

        engine = Engine()
        engine.process(my_generator())
        engine.run()            # until the heap drains
        engine.run(until=3600)  # or until a simulated deadline
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_ScheduledItem] = []
        # plain int, not itertools.count(): the next sequence number is
        # part of the engine's restorable state (see snapshot())
        self._next_seq = 0
        self._events_processed = 0
        self._cancelled = 0
        self._listeners: list[Callable[[float], None]] = []

    # -- scheduling -------------------------------------------------------

    def call_at(self, time: float, callback: Callable[[], None]
                ) -> _ScheduledItem:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {self.now}")
        item = _ScheduledItem(time, self._next_seq, callback)
        self._next_seq += 1
        item.in_heap = True
        heapq.heappush(self._heap, item)
        return item

    def call_after(self, delay: float, callback: Callable[[], None]
                   ) -> _ScheduledItem:
        """Schedule ``callback`` ``delay`` seconds from now."""
        return self.call_at(self.now + delay, callback)

    def cancel(self, item: _ScheduledItem) -> None:
        """Cancel a previously scheduled callback (lazy removal).

        Cancelled items stay buried in the heap until their time comes
        up; a cancel-heavy run (a chaos storm killing thousands of
        scheduled completions) used to grow the heap without bound.  A
        counter now tracks the buried garbage and compacts the heap
        once it dominates, keeping memory proportional to the *live*
        event count.
        """
        if item.cancelled:
            return
        item.cancelled = True
        if not item.in_heap:
            # Already popped (dispatched, or reached at the head of the
            # same timestamp): there is no buried garbage to account
            # for.  Counting it anyway let ``pending`` go negative once
            # a ``_compact()`` inside a callback zeroed the counter.
            return
        self._cancelled += 1
        if (self._cancelled >= _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 >= len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled items and re-heapify (order-preserving)."""
        live = []
        for item in self._heap:
            if item.cancelled:
                item.in_heap = False
            else:
                live.append(item)
        self._heap = live
        heapq.heapify(self._heap)
        self._cancelled = 0

    # -- observation -------------------------------------------------------

    def add_listener(self, listener: Callable[[float], None]) -> None:
        """Register a hook run after *every* executed callback.

        Listeners receive the current simulated time.  They observe, they
        do not schedule: raising from a listener aborts the run, which is
        exactly what an invariant checker wants.

        The listener list is copy-on-write: mutating it is safe at any
        point, including from inside a running callback or listener.  A
        listener attached mid-run starts firing from the *next* event;
        one detached mid-run stops immediately (it does not fire for
        the event being dispatched, even if it was about to).
        """
        self._listeners = self._listeners + [listener]

    def remove_listener(self, listener: Callable[[float], None]) -> None:
        """Unregister a previously added listener.

        Raises ``ValueError`` if the listener was never added, matching
        ``list.remove`` — a detach that silently no-ops would hide
        double-detach bugs in exit paths.
        """
        listeners = list(self._listeners)
        listeners.remove(listener)
        self._listeners = listeners

    # -- high-level helpers ------------------------------------------------

    def event(self) -> Event:
        """A fresh one-shot event bound to this engine."""
        return Event(self)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a generator-based process."""
        return Process(self, generator, name)

    def resource(self, capacity: int) -> Resource:
        """A counted FIFO resource of the given capacity."""
        return Resource(self, capacity)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        event = Event(self)
        self.call_after(delay, lambda: event.succeed(value))
        return event

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when every input event has fired.

        The combined event's value is the list of individual values in the
        order the inputs were given.
        """
        events = list(events)
        combined = Event(self)
        if not events:
            self.call_at(self.now, lambda: combined.succeed([]))
            return combined
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)

        def on_fire(index: int, event: Event) -> None:
            values[index] = event.value
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.succeed(values)

        for index, event in enumerate(events):
            event.subscribe(lambda ev, i=index: on_fire(i, ev))
        return combined

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires when the first input event fires.

        An empty input is rejected: unlike :meth:`all_of` (vacuously
        satisfied), "the first of nothing" can never fire, and silently
        returning a dead event hangs the waiting process forever.
        """
        events = list(events)
        if not events:
            raise SimulationError(
                "any_of() with no events would never fire; waiting on "
                "nothing is a caller bug")
        combined = Event(self)

        def on_fire(event: Event) -> None:
            if not combined.triggered:
                combined.succeed(event.value)

        for event in events:
            event.subscribe(on_fire)
        return combined

    # -- running -----------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None
            ) -> float:
        """Run the loop; returns the final simulated time.

        ``until`` stops the clock at a deadline (events at later times stay
        queued); ``max_events`` is a safety valve for runaway simulations.
        """
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            item = heap[0]
            if item.cancelled:
                heappop(heap)
                item.in_heap = False
                self._cancelled -= 1
                continue
            if until is not None and item.time > until:
                self.now = until
                return self.now
            heappop(heap)
            item.in_heap = False
            self.now = item.time
            # Per-event snapshot of the copy-on-write listener list,
            # taken *before* the callback: a listener attached inside
            # the callback (or inside another listener) is absent from
            # the snapshot and first fires on the next event; one
            # detached anywhere mid-event is skipped immediately.  When
            # nothing mutates, the identity check short-circuits and
            # the loop costs the same as iterating a cached list.
            snapshot = self._listeners
            item.callback()
            # compaction inside the callback may have replaced the heap
            heap = self._heap
            for listener in snapshot:
                if (self._listeners is not snapshot
                        and listener not in self._listeners):
                    continue
                listener(self.now)
            processed += 1
            self._events_processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a runaway "
                    "simulation")
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> EngineSnapshot:
        """Capture the engine's restorable state (see EngineSnapshot)."""
        heap = tuple(sorted((item.time, item.seq, item.cancelled)
                            for item in self._heap))
        return EngineSnapshot(now=self.now, next_seq=self._next_seq,
                              events_processed=self._events_processed,
                              heap=heap)

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Adopt ``snapshot``'s clock and sequence counter.

        Heap callbacks cannot be serialized, so this engine must first
        be rebuilt by replaying the operations that produced the
        snapshot; ``restore`` then *verifies* the rebuilt heap is
        structurally identical — same (time, seq, cancelled) triples —
        and fast-forwards the clock, next sequence number, and event
        counter.  A structural mismatch means the replay diverged and
        raises :class:`SimulationError` rather than resuming a run
        that could silently differ from the original.
        """
        current = self.snapshot()
        if current.heap != snapshot.heap:
            raise SimulationError(
                f"engine restore diverged: rebuilt heap has "
                f"{len(current.heap)} items (digest {current.digest()}) "
                f"but the snapshot recorded {len(snapshot.heap)} "
                f"(digest {snapshot.digest()})")
        self.now = snapshot.now
        self._next_seq = snapshot.next_seq
        self._events_processed = snapshot.events_processed

    @property
    def pending(self) -> int:
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self) -> int:
        """Physical heap length, cancelled garbage included."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed
