"""Seedable random distributions used by the trace generators.

The paper reports distributional statistics (medians, means, CDF anchors).
We fit simple parametric families to those anchors; every distribution here
draws from a caller-supplied :class:`numpy.random.Generator` so that a
single seed reproduces an entire synthetic trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class Distribution:
    """Base class: a distribution over floats."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    value: float

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.value)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, float(self.value))


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform distribution over [low, high]."""
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("high must be >= low")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (not rate)."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean, size=n)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterized by the underlying normal's mu/sigma."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def median(self) -> float:
        return math.exp(self.mu)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma ** 2 / 2.0)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)


def lognormal_from_median_mean(median: float, mean: float) -> LogNormal:
    """Fit a log-normal to a reported (median, mean) pair.

    The paper's Table 3 reports both the median and the average of
    time-to-failure per category; a log-normal is the natural heavy-tailed
    family fitting both moments: ``mu = ln(median)`` and
    ``sigma = sqrt(2 * ln(mean / median))``.
    """
    if median <= 0 or mean <= 0:
        raise ValueError("median and mean must be positive")
    if mean < median:
        # Degenerate reporting (possible with tiny samples); fall back to a
        # narrow distribution centred on the median.
        return LogNormal(math.log(median), 0.05)
    sigma = math.sqrt(2.0 * math.log(mean / median))
    return LogNormal(math.log(median), sigma)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (Lomax-shifted) with scale ``xm`` and shape ``alpha``."""

    xm: float
    alpha: float

    def __post_init__(self) -> None:
        if self.xm <= 0 or self.alpha <= 0:
            raise ValueError("xm and alpha must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.xm * (1.0 + rng.pareto(self.alpha)))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.xm * (1.0 + rng.pareto(self.alpha, size=n))


class Empirical(Distribution):
    """Samples uniformly from a fixed pool of observed values."""

    def __init__(self, values: Sequence[float]) -> None:
        if len(values) == 0:
            raise ValueError("values must be non-empty")
        self.values = np.asarray(values, dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self.values, size=n)


class Mixture(Distribution):
    """A weighted mixture of component distributions."""

    def __init__(self, components: Sequence[Distribution],
                 weights: Sequence[float]) -> None:
        if len(components) != len(weights):
            raise ValueError("components and weights must align")
        if len(components) == 0:
            raise ValueError("mixture must have at least one component")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.components = list(components)
        self.weights = np.asarray(weights, dtype=float) / total

    def sample(self, rng: np.random.Generator) -> float:
        index = int(rng.choice(len(self.components), p=self.weights))
        return self.components[index].sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        counts = rng.multinomial(n, self.weights)
        parts = [component.sample_many(rng, int(count))
                 for component, count in zip(self.components, counts)
                 if count > 0]
        samples = np.concatenate(parts) if parts else np.empty(0)
        rng.shuffle(samples)
        return samples


class Choice:
    """A weighted categorical choice over arbitrary objects."""

    def __init__(self, options: Sequence, weights: Sequence[float]) -> None:
        if len(options) != len(weights):
            raise ValueError("options and weights must align")
        if len(options) == 0:
            raise ValueError("at least one option required")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.options = list(options)
        self.weights = np.asarray(weights, dtype=float) / total

    def sample(self, rng: np.random.Generator):
        index = int(rng.choice(len(self.options), p=self.weights))
        return self.options[index]

    def sample_many(self, rng: np.random.Generator, n: int) -> list:
        indices = rng.choice(len(self.options), size=n, p=self.weights)
        return [self.options[int(i)] for i in indices]
