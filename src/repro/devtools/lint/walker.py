"""The shared AST walk that drives every checker.

The tree is traversed exactly once; each checker registers the node
types it cares about and is dispatched with the full ancestor stack, so
individual rules stay small and pay no traversal cost of their own.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.findings import RULES, Finding


class Checker:
    """Base class for one lint rule bound to one file."""

    #: rule code, e.g. ``"RNG001"`` (subclasses must override)
    code = ""
    #: exact AST node types this checker wants to see
    interests: tuple[type[ast.AST], ...] = ()

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        """Called for every node whose type is in :attr:`interests`."""

    def finish(self) -> None:
        """Called once after the walk (module-level aggregation)."""

    def report(self, node: ast.AST, message: str,
               code: str | None = None) -> None:
        code = code or self.code
        line = getattr(node, "lineno", 1)
        if self.ctx.is_suppressed(code, line):
            return
        self.findings.append(Finding(
            code=code,
            message=message,
            path=self.ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None) or line,
            end_col=getattr(node, "end_col_offset", None) or 0,
            snippet=self.ctx.snippet(line),
        ))


def run_checkers(ctx: FileContext,
                 checker_types: Iterable[type[Checker]]
                 ) -> list[Finding]:
    """Instantiate the checkers and drive them over one shared walk."""
    checkers = [cls(ctx) for cls in checker_types]
    for checker in checkers:
        if not checker.code or checker.code not in RULES:
            raise ValueError(
                f"{type(checker).__name__} has unregistered code "
                f"{checker.code!r}")
    dispatch: dict[type[ast.AST], list[Checker]] = {}
    for checker in checkers:
        for node_type in checker.interests:
            dispatch.setdefault(node_type, []).append(checker)

    stack: list[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for checker in dispatch.get(type(node), ()):
            checker.handle(node, stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            visit(child)
        stack.pop()

    visit(ctx.tree)
    findings: list[Finding] = []
    for checker in checkers:
        checker.finish()
        findings.extend(checker.findings)
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def scoped_walk(scope: ast.AST) -> Iterable[ast.AST]:
    """Yield nodes of one function/module scope.

    Descends into loops, conditionals and class bodies but *not* into
    nested function/lambda scopes — those are dispatched separately, so
    scope-local inference (accumulators, set bindings) stays correct.
    """
    todo = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop(0)
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            todo.extend(ast.iter_child_nodes(node))
