"""reprolint — determinism & simulation-safety static analysis.

An AST-based lint pass purpose-built for this seeded discrete-event
codebase.  Seven rules encode the conventions that keep golden chaos
traces byte-stable; see ``docs/LINT.md`` for the catalogue and
``python -m repro lint --list-rules`` for a summary.

Library use::

    from repro.devtools.lint import lint_source, run_lint
    findings = lint_source(code, path="sim/example.py")
"""

from repro.devtools.lint.baseline import Baseline, BaselineEntry
from repro.devtools.lint.checkers import ALL_CHECKERS
from repro.devtools.lint.context import SIM_PACKAGES, FileContext
from repro.devtools.lint.findings import RULES, Finding
from repro.devtools.lint.runner import (LintConfig, LintResult,
                                        lint_source, run_lint)
from repro.devtools.lint.walker import Checker, run_checkers

__all__ = [
    "ALL_CHECKERS",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "SIM_PACKAGES",
    "lint_source",
    "run_checkers",
    "run_lint",
]
