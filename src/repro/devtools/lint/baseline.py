"""Grandfathered-finding baseline: load, match, regenerate.

The baseline is a committed JSON file mapping finding fingerprints to a
human-written justification.  Fingerprints hash the (path, code,
snippet) triple — not the line number — so edits elsewhere in a file do
not invalidate entries, while any change to the offending line itself
forces the finding (and its justification) to be re-earned.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.findings import Finding

_VERSION = 1


@dataclass
class BaselineEntry:
    fingerprint: str
    code: str
    path: str
    line: int
    snippet: str
    justification: str
    #: how many identical findings this entry absorbs
    count: int = 1

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "snippet": self.snippet,
            "justification": self.justification,
            "count": self.count,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r}")
        entries = [BaselineEntry(
            fingerprint=raw["fingerprint"],
            code=raw["code"],
            path=raw["path"],
            line=int(raw.get("line", 0)),
            snippet=raw.get("snippet", ""),
            justification=raw.get("justification", ""),
            count=int(raw.get("count", 1)),
        ) for raw in data.get("entries", [])]
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": _VERSION,
            "entries": [entry.to_dict() for entry in sorted(
                self.entries,
                key=lambda e: (e.path, e.code, e.line,
                               e.fingerprint))],
        }
        Path(path).write_text(json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n")

    def merged_entries(self) -> list[BaselineEntry]:
        """Entries with duplicate fingerprints coalesced.

        Two findings in one file can share a fingerprint (identical
        snippet, same rule); hand-merged baselines can carry them as
        separate entries.  Coalescing is deterministic: counts sum,
        the first entry (in list order) keeps the justification and
        anchor line.
        """
        merged: dict[str, BaselineEntry] = {}
        for entry in self.entries:
            kept = merged.get(entry.fingerprint)
            if kept is None:
                merged[entry.fingerprint] = dataclasses.replace(entry)
            else:
                kept.count += entry.count
        return list(merged.values())

    def apply(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding],
                         list[BaselineEntry]]:
        """Split findings into (fresh, baselined) and report staleness.

        Returns ``(fresh, baselined, stale_entries)`` where stale
        entries matched nothing — their violation was fixed and the
        baseline should be regenerated.  Stale entries come back in
        stable (path, code, line, fingerprint) order.
        """
        entries = self.merged_entries()
        budget = {entry.fingerprint: entry.count for entry in entries}
        by_print = {entry.fingerprint: entry for entry in entries}
        fresh: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint()
            if budget.get(fingerprint, 0) > 0:
                budget[fingerprint] -= 1
                entry = by_print[fingerprint]
                baselined.append(dataclasses.replace(
                    finding, justification=entry.justification))
            else:
                fresh.append(finding)
        stale = sorted(
            (by_print[fp] for fp, left in budget.items()
             if left == by_print[fp].count),
            key=lambda e: (e.path, e.code, e.line, e.fingerprint))
        return fresh, baselined, stale

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        """Build a baseline absorbing ``findings``.

        Justifications from ``previous`` are carried over; new entries
        get a TODO placeholder that a human must replace.
        """
        carried: dict[str, str] = {}
        for entry in (previous.merged_entries() if previous else []):
            carried.setdefault(entry.fingerprint, entry.justification)
        counts: dict[str, BaselineEntry] = {}
        for finding in findings:
            fingerprint = finding.fingerprint()
            if fingerprint in counts:
                counts[fingerprint].count += 1
                continue
            counts[fingerprint] = BaselineEntry(
                fingerprint=fingerprint,
                code=finding.code,
                path=finding.path,
                line=finding.line,
                snippet=finding.snippet,
                justification=carried.get(
                    fingerprint, "TODO: justify or fix"),
            )
        return cls(entries=list(counts.values()))
