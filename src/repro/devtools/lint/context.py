"""Per-file analysis context: parse tree, imports, suppressions."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

#: packages whose code runs under the deterministic simulation engine;
#: wall-clock and ordering rules only apply inside these.
SIM_PACKAGES = frozenset({"sim", "scheduler", "chaos", "core",
                          "failures", "obs", "service"})

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<scope>-file)?"
    r"(?:\s*=\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?")

#: sentinel meaning "every rule code"
ALL_CODES = "*"


def _parse_suppressions(lines: list[str]
                        ) -> tuple[dict[int, set[str]], set[str]]:
    """Scan source lines for ``# reprolint: disable[=CODE,...]``.

    A trailing comment suppresses its own line; a comment-only line
    suppresses the next line; ``disable-file`` suppresses the whole
    file.  Returns (line -> codes, file-level codes); the sentinel
    ``*`` stands for all codes.
    """
    per_line: dict[int, set[str]] = {}
    file_level: set[str] = set()
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        raw = match.group("codes")
        codes = ({code.strip() for code in raw.split(",")}
                 if raw else {ALL_CODES})
        if match.group("scope"):
            file_level |= codes
        elif text.lstrip().startswith("#"):
            per_line.setdefault(number + 1, set()).update(codes)
        else:
            per_line.setdefault(number, set()).update(codes)
    return per_line, file_level


@dataclass
class FileContext:
    """Everything checkers need to know about one source file."""

    path: str                       # as reported in findings
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: import alias -> module ("np" -> "numpy")
    imports: dict[str, str] = field(default_factory=dict)
    #: from-import name -> dotted origin ("monotonic" -> "time.monotonic")
    from_imports: dict[str, str] = field(default_factory=dict)
    sim_owned: bool = False
    #: True for the declared clock/storage seam modules (see
    #: ``repro.devtools.lint.project.BLESSED_SEAMS``) — the only
    #: sim-owned modules allowed to touch the host clock.
    blessed_seam: bool = False
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str, path: str) -> "FileContext":
        # local import: project.py imports this module
        from repro.devtools.lint.project import (
            BLESSED_SEAMS, module_name_from_path_text)
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        per_line, file_level = _parse_suppressions(lines)
        ctx = cls(path=path, source=source, tree=tree, lines=lines,
                  suppressions=per_line, file_suppressions=file_level,
                  sim_owned=is_sim_owned(path),
                  blessed_seam=(module_name_from_path_text(path)
                                in BLESSED_SEAMS))
        ctx._collect_imports()
        return ctx

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self.imports[name] = (alias.name if alias.asname
                                          else alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    name = alias.asname or alias.name
                    self.from_imports[name] = (f"{node.module}."
                                               f"{alias.name}")

    # -- name resolution --------------------------------------------------

    def resolve(self, node: ast.AST) -> tuple[str | None, bool]:
        """Resolve a Name/Attribute chain to a dotted path.

        Returns ``(dotted, imported)``: ``dotted`` like
        ``"numpy.random.rand"`` or ``"hash"``; ``imported`` is True when
        the chain's root was introduced by an import (so ``dotted`` is
        trustworthy) and False for bare names (builtins, locals).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None, False
        root = node.id
        if root in self.imports:
            base, imported = self.imports[root], True
        elif root in self.from_imports:
            base, imported = self.from_imports[root], True
        else:
            base, imported = root, False
        return ".".join([base, *reversed(parts)]), imported

    # -- suppression ------------------------------------------------------

    def is_suppressed(self, code: str, line: int) -> bool:
        if (ALL_CODES in self.file_suppressions
                or code in self.file_suppressions):
            return True
        codes = self.suppressions.get(line)
        return bool(codes) and (ALL_CODES in codes or code in codes)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def is_sim_owned(path: str) -> bool:
    """True when any path segment names a sim-owned package."""
    parts = re.split(r"[\\/]", path)
    return bool(SIM_PACKAGES.intersection(parts[:-1]))
