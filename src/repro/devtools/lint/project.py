"""Phase-1 project index: whole-tree facts for cross-module rules.

The file-local checkers (phase 1 of a lint run) see one module at a
time; the conventions that keep golden traces byte-stable — isolated
RNG streams, the ``tracer=None → NULL_TRACER`` seam, attach/detach
pairing, no wall-clock reach-through — are *cross-module* contracts.
:class:`ProjectIndex` is the shared substrate for checking them: one
pass over every file builds

* a module import graph (absolute imports, relative imports resolved
  against the importer's package);
* per-module symbol tables with re-export origins, so a use of
  ``repro.obs.NULL_TRACER`` canonicalizes to its defining module;
* per-class summaries: ``__init__`` tracer-seam facts, attribute-call
  sites with flow flags (inside ``finally``, statement nesting depth),
  referenced symbols, and span emission;
* module-level constant dicts (the RNG-stream registry).

Index construction is content-hash cached: rebuilding with ``previous``
re-parses only files whose bytes changed and reuses every other
module's summary object.

Project checkers (phase 2) subclass :class:`ProjectChecker` and run
against the finished index; their findings carry the same fingerprints
and obey the same inline suppressions as file-local ones.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.lint.context import FileContext
from repro.devtools.lint.findings import RULES, Finding

#: modules allowed to touch the host clock / real threads: the declared
#: seams between the deterministic simulation and the real machine.
#: ``core/checkpoint.py`` owns the async-persist worker thread (its
#: clock is injectable); ``cluster/storage.py`` owns the
#: MonotonicClock/VirtualClock seam those threads read through.  IMP001
#: treats them as taint absorbers and CLK001 skips them; everything
#: else sim-owned must route time through the engine.
BLESSED_SEAMS = frozenset({
    "repro.cluster.storage",
    "repro.core.checkpoint",
})

#: method names that conventionally run on every teardown path; a
#: release call inside one counts as exit-safe for pairing rules.
TEARDOWN_METHODS = frozenset({
    "close", "aclose", "__exit__", "__aexit__", "__del__",
    "stop", "shutdown", "detach", "disconnect", "release",
})

_BLOCK_FIELDS = ("body", "orelse", "finalbody", "handlers")


def dotted_text(node: ast.AST) -> str:
    """Best-effort textual dotted form of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_text(node.value)
        return f"{base}.{node.attr}" if base else ""
    if isinstance(node, ast.Call):
        base = dotted_text(node.func)
        return f"{base}()" if base else ""
    return ""


def module_name_for(path: Path) -> str:
    """Dotted module name by ascending enclosing packages on disk."""
    resolved = Path(path)
    parts = [] if resolved.stem == "__init__" else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


def module_name_from_path_text(path: str) -> str | None:
    """Module name for repo-layout paths (``.../repro/a/b.py``).

    Works on path *strings* (no filesystem access), so
    :class:`FileContext` can classify in-memory sources; returns None
    for paths outside a ``repro`` tree.
    """
    parts = re.split(r"[\\/]", path)
    if not parts or "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class CallSite:
    """One attribute call, with the flow context pairing rules need."""

    method: str      # enclosing function name ("<module>" at top level)
    attr: str        # called attribute, e.g. "add_listener"
    receiver: str    # textual receiver chain, e.g. "self.engine"
    line: int
    col: int
    in_finally: bool  # lexically inside any ``finally:`` block
    top_level: bool   # direct statement of the enclosing function body


@dataclass(frozen=True)
class ConstDict:
    """A module-level ``NAME = {"str": int, ...}`` literal."""

    line: int
    col: int
    values: tuple[tuple[str, int], ...]

    def as_dict(self) -> dict[str, int]:
        return dict(self.values)


@dataclass
class ClassSummary:
    """Everything phase-2 rules need to know about one class."""

    name: str
    line: int
    col: int
    bases: tuple[str, ...] = ()
    is_dataclass: bool = False
    methods: tuple[str, ...] = ()
    #: attribute-call sites anywhere in the class body
    calls: tuple[CallSite, ...] = ()
    #: resolved dotted names the class body references via imports
    uses: frozenset[str] = frozenset()
    #: any identifier/attribute mentioning "tracer" in the body
    mentions_tracer: bool = False
    # -- __init__ tracer-seam facts -----------------------------------
    has_tracer_param: bool = False
    tracer_default_none: bool = False
    tracer_line: int = 0
    tracer_col: int = 0
    #: resolved dotted fallbacks from ``tracer or X`` /
    #: ``tracer if tracer is not None else X`` in ``__init__``
    tracer_fallbacks: tuple[str, ...] = ()
    #: ``tracer`` forwarded as a call argument inside ``__init__``
    tracer_delegated: bool = False


@dataclass
class ModuleInfo:
    """Phase-1 summary of one parsed module."""

    name: str
    path: Path
    digest: str
    ctx: FileContext
    #: absolute dotted modules this module imports
    module_imports: frozenset[str] = frozenset()
    #: local name -> (origin module, origin symbol) for re-export chains
    export_origins: dict[str, tuple[str, str]] = field(
        default_factory=dict)
    #: symbols defined (not imported) at module level
    defined: frozenset[str] = frozenset()
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    const_dicts: dict[str, ConstDict] = field(default_factory=dict)
    #: attribute-call sites outside any class
    calls: tuple[CallSite, ...] = ()

    @property
    def sim_owned(self) -> bool:
        return self.ctx.sim_owned

    @property
    def blessed_seam(self) -> bool:
        return self.name in BLESSED_SEAMS


# -- extraction ------------------------------------------------------------


def _import_targets(node: ast.stmt, module: str,
                    is_package: bool = False) -> list[str]:
    """Absolute dotted module targets of one import statement."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level == 0:
            return [node.module] if node.module else []
        # relative: climb `level` packages from the importing module
        package = module.split(".")
        if not is_package:
            package = package[:-1]
        base = package[:len(package) - node.level + 1]
        target = ".".join(base + ([node.module] if node.module else []))
        return [target] if target else []
    return []


def _stmt_expr_nodes(stmt: ast.stmt) -> Iterable[ast.AST]:
    """AST nodes of one statement, excluding nested block bodies."""
    for fieldname, value in ast.iter_fields(stmt):
        if fieldname in _BLOCK_FIELDS:
            continue
        if isinstance(value, ast.AST):
            yield from ast.walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.AST):
                    yield from ast.walk(item)


def _collect_calls(body: Sequence[ast.stmt], method: str,
                   out: list[CallSite], in_finally: bool = False,
                   depth: int = 0) -> None:
    """Record attribute calls in ``body`` with flow flags.

    ``with`` bodies keep the parent's depth (they execute
    unconditionally); conditional and loop bodies nest.  Nested
    function/class scopes are skipped — they are summarized separately.
    """
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for node in _stmt_expr_nodes(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                out.append(CallSite(
                    method=method, attr=node.func.attr,
                    receiver=dotted_text(node.func.value),
                    line=node.lineno, col=node.col_offset,
                    in_finally=in_finally, top_level=depth == 0))
        if isinstance(stmt, ast.Try):
            _collect_calls(stmt.body, method, out, in_finally,
                           depth + 1)
            for handler in stmt.handlers:
                _collect_calls(handler.body, method, out, in_finally,
                               depth + 1)
            _collect_calls(stmt.orelse, method, out, in_finally,
                           depth + 1)
            _collect_calls(stmt.finalbody, method, out, True, depth + 1)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            _collect_calls(stmt.body, method, out, in_finally, depth)
        elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor,
                               ast.While)):
            _collect_calls(stmt.body, method, out, in_finally,
                           depth + 1)
            _collect_calls(stmt.orelse, method, out, in_finally,
                           depth + 1)
        elif isinstance(stmt, ast.Match):
            for case in stmt.cases:
                _collect_calls(case.body, method, out, in_finally,
                               depth + 1)


def _tracer_arg(init: ast.FunctionDef) -> tuple[ast.arg | None, bool]:
    """The ``tracer`` parameter of ``__init__`` and whether its
    default is the literal ``None``."""
    args = init.args
    positional = args.posonlyargs + args.args
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        if arg.arg == "tracer":
            return arg, (isinstance(default, ast.Constant)
                         and default.value is None)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == "tracer":
            return arg, (isinstance(kw_default, ast.Constant)
                         and kw_default.value is None)
    return None, False


def _tracer_facts(init: ast.FunctionDef, ctx: FileContext
                  ) -> tuple[tuple[str, ...], bool]:
    """(resolved normalization fallbacks, delegated-as-argument)."""
    fallbacks: list[str] = []
    delegated = False

    def _is_tracer(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == "tracer"

    def _fallback(node: ast.AST) -> None:
        dotted, imported = ctx.resolve(node)
        if dotted and imported:
            fallbacks.append(dotted)

    for node in ast.walk(init):
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
            if node.values and _is_tracer(node.values[0]):
                for other in node.values[1:]:
                    _fallback(other)
        elif isinstance(node, ast.IfExp):
            test_names = {n.id for n in ast.walk(node.test)
                          if isinstance(n, ast.Name)}
            if "tracer" in test_names:
                if _is_tracer(node.body):
                    _fallback(node.orelse)
                elif _is_tracer(node.orelse):
                    _fallback(node.body)
        elif isinstance(node, ast.Call):
            if any(_is_tracer(arg) for arg in node.args) or any(
                    _is_tracer(kw.value) for kw in node.keywords):
                delegated = True
    return tuple(fallbacks), delegated


def _summarize_class(node: ast.ClassDef, ctx: FileContext
                     ) -> ClassSummary:
    calls: list[CallSite] = []
    methods: list[str] = []
    uses: set[str] = set()
    mentions_tracer = False
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(child.name)
            _collect_calls(child.body, child.name, calls)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if "tracer" in sub.id.lower():
                mentions_tracer = True
            dotted, imported = ctx.resolve(sub)
            if imported and dotted:
                uses.add(dotted)
        elif isinstance(sub, ast.Attribute):
            if "tracer" in sub.attr.lower():
                mentions_tracer = True

    summary = ClassSummary(
        name=node.name, line=node.lineno, col=node.col_offset,
        bases=tuple(filter(None, (dotted_text(base)
                                  for base in node.bases))),
        is_dataclass=any(
            dotted_text(dec).split(".")[-1].rstrip("()") == "dataclass"
            or (isinstance(dec, ast.Call)
                and dotted_text(dec.func).split(".")[-1] == "dataclass")
            for dec in node.decorator_list),
        methods=tuple(methods), calls=tuple(calls),
        uses=frozenset(uses), mentions_tracer=mentions_tracer)

    init = next((child for child in node.body
                 if isinstance(child, ast.FunctionDef)
                 and child.name == "__init__"), None)
    if init is not None:
        arg, default_none = _tracer_arg(init)
        if arg is not None:
            fallbacks, delegated = _tracer_facts(init, ctx)
            summary.has_tracer_param = True
            summary.tracer_default_none = default_none
            summary.tracer_line = arg.lineno
            summary.tracer_col = arg.col_offset
            summary.tracer_fallbacks = fallbacks
            summary.tracer_delegated = delegated
    return summary


def _summarize_module(name: str, path: Path, digest: str,
                      ctx: FileContext) -> ModuleInfo:
    info = ModuleInfo(name=name, path=path, digest=digest, ctx=ctx)
    is_package = path.stem == "__init__"
    imports: set[str] = set()
    defined: set[str] = set()
    module_calls: list[CallSite] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            imports.update(_import_targets(node, name, is_package))
        if isinstance(node, ast.ImportFrom):
            targets = _import_targets(node, name, is_package)
            origin = targets[0] if targets else None
            if origin:
                for alias in node.names:
                    info.export_origins[alias.asname or alias.name] = (
                        origin, alias.name)
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            info.classes[node.name] = _summarize_class(node, ctx)
            defined.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defined.add(node.name)
            _collect_calls(node.body, node.name, module_calls)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            defined.update(names)
            value = node.value
            if (len(names) == 1 and isinstance(value, ast.Dict)
                    and value.keys
                    and all(isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                            for k in value.keys)
                    and all(isinstance(v, ast.Constant)
                            and isinstance(v.value, int)
                            and not isinstance(v.value, bool)
                            for v in value.values)):
                info.const_dicts[names[0]] = ConstDict(
                    line=value.lineno, col=value.col_offset,
                    values=tuple((k.value, v.value) for k, v in
                                 zip(value.keys, value.values)))
    _collect_calls(ctx.tree.body, "<module>", module_calls)
    info.module_imports = frozenset(imports)
    info.defined = frozenset(defined)
    info.calls = tuple(module_calls)
    return info


# -- the index -------------------------------------------------------------


@dataclass
class ProjectIndex:
    """Cross-module facts for one lint run."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    by_path: dict[str, str] = field(default_factory=dict)
    #: modules re-parsed (vs. reused) in the last build — cache telemetry
    parsed: frozenset[str] = frozenset()

    @classmethod
    def build(cls, files: Sequence[str | Path],
              previous: "ProjectIndex | None" = None) -> "ProjectIndex":
        """Index ``files``, reusing ``previous`` for unchanged bytes."""
        index = cls()
        parsed: set[str] = set()
        for raw in files:
            path = Path(raw)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            digest = hashlib.sha256(
                source.encode("utf-8")).hexdigest()
            key = str(path.resolve())
            name = module_name_for(path)
            old = None
            if previous is not None:
                old_name = previous.by_path.get(key)
                old = (previous.modules.get(old_name)
                       if old_name is not None else None)
            if old is not None and old.digest == digest:
                info = old
            else:
                try:
                    ctx = FileContext.parse(source, str(path))
                except SyntaxError:
                    continue        # phase 1 reports PAR000
                info = _summarize_module(name, path, digest, ctx)
                parsed.add(name)
            index.modules[name] = info
            index.by_path[key] = name
        index.parsed = frozenset(parsed)
        return index

    # -- symbol resolution -------------------------------------------------

    def canonical(self, module: str, symbol: str,
                  _seen: frozenset[str] = frozenset()) -> str:
        """Follow re-export chains to the defining ``module.symbol``."""
        key = f"{module}.{symbol}"
        info = self.modules.get(module)
        if info is None or key in _seen:
            return key
        origin = info.export_origins.get(symbol)
        if origin is None:
            return key
        return self.canonical(origin[0], origin[1], _seen | {key})

    def canonical_use(self, dotted: str) -> str:
        """Canonicalize a resolved use like ``repro.obs.NULL_TRACER``."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                resolved = self.canonical(prefix, parts[cut])
                return ".".join([resolved, *parts[cut + 1:]])
        return dotted

    def project_module(self, dotted: str) -> str | None:
        """The longest indexed-module prefix of an import target."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix
        return None


# -- phase-2 checker protocol ----------------------------------------------


class ProjectChecker:
    """Base class for one cross-module rule bound to an index."""

    #: rule code, e.g. ``"IMP001"`` (subclasses must override)
    code = ""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.findings: list[Finding] = []

    def run(self) -> None:
        """Populate :attr:`findings` from the index."""

    def report(self, module: ModuleInfo, line: int, col: int,
               message: str, code: str | None = None) -> None:
        code = code or self.code
        if module.ctx.is_suppressed(code, line):
            return
        self.findings.append(Finding(
            code=code, message=message, path=module.ctx.path,
            line=line, col=col, end_line=line, end_col=col,
            snippet=module.ctx.snippet(line)))


def run_project_checkers(
        index: ProjectIndex,
        checker_types: Iterable[type[ProjectChecker]]) -> list[Finding]:
    """Run phase-2 checkers; findings sorted for stable output."""
    findings: list[Finding] = []
    for cls in checker_types:
        checker = cls(index)
        if not checker.code or checker.code not in RULES:
            raise ValueError(
                f"{cls.__name__} has unregistered code "
                f"{checker.code!r}")
        checker.run()
        findings.extend(checker.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
