"""Finding records and rule metadata shared by every checker."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

#: every rule code reprolint can emit, with its one-line charter.
RULES: dict[str, str] = {
    "RNG001": "unseeded/global randomness (random module, legacy "
              "numpy.random.*, builtin hash(), os.urandom, uuid)",
    "CLK001": "wall-clock read in sim-owned code; route through the "
              "engine clock / Clock seam",
    "ORD001": "iteration order depends on set hashing or id(); "
              "golden traces require sorted()/stable keys",
    "EXC001": "silent exception swallowing in recovery/checkpoint "
              "paths",
    "LSN001": "engine listener added but never removed in this module",
    "FLT001": "float accumulation with += in a loop; use math.fsum "
              "or integer ticks for cross-platform stability",
    "MUT001": "mutable default argument",
    "SEED001": "literal seed+N RNG stream with an offset that is not "
               "declared in the chaos stream registry "
               "(repro.chaos.streams.STREAM_OFFSETS) or collides with "
               "another subsystem",
    "TRC001": "tracer-seam completeness: tracer params must default "
              "to None and normalize via NULL_TRACER; engine-driven "
              "sim classes must expose a tracer seam",
    "LSN002": "paired resource acquired without an exit-safe release "
              "(finally block, teardown method, or unconditional "
              "statement) anywhere in the class",
    "SPAN001": "tracer.begin() span with no .end() call anywhere in "
               "the class; the span never closes",
    "IMP001": "sim-owned module reaches threading/time/network stdlib "
              "modules through its import chain outside the blessed "
              "clock/storage seams",
    "PAR000": "file could not be parsed",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source span."""

    code: str
    message: str
    path: str
    line: int
    col: int
    end_line: int = 0
    end_col: int = 0
    snippet: str = ""
    #: populated when a baseline entry absorbed this finding
    justification: str | None = field(default=None, compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line number so that unrelated edits
        above a grandfathered finding do not invalidate the baseline;
        the snippet text anchors it instead.
        """
        payload = f"{self.path}|{self.code}|{self.snippet}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")
