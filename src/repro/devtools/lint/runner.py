"""Run reprolint over files and directories; report; set exit codes.

A full run has two phases: phase 1 walks each file once and runs the
file-local checkers; phase 2 builds a
:class:`~repro.devtools.lint.project.ProjectIndex` over every parsed
file and runs the cross-module checkers against it.

Exit-code contract (relied on by CI):

* ``0`` — clean: every finding suppressed inline or absorbed by the
  baseline;
* ``1`` — fresh findings;
* ``2`` — a file failed to parse or the invocation was invalid.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.devtools.lint.baseline import Baseline, BaselineEntry
from repro.devtools.lint.checkers import (ALL_CHECKERS,
                                          ALL_PROJECT_CHECKERS)
from repro.devtools.lint.context import FileContext
from repro.devtools.lint.findings import RULES, Finding
from repro.devtools.lint.fixes import FIXABLE_CODES, apply_fixes
from repro.devtools.lint.project import (ProjectChecker, ProjectIndex,
                                         run_project_checkers)
from repro.devtools.lint.sarif import render_sarif
from repro.devtools.lint.walker import Checker, run_checkers

DEFAULT_BASELINE = Path("tools") / "reprolint_baseline.json"


@dataclass
class LintConfig:
    """Rule selection; defaults to every registered checker."""

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    #: run the cross-module phase (ProjectIndex + project checkers)
    project: bool = True

    def checkers(self) -> list[type[Checker]]:
        chosen = []
        for checker in ALL_CHECKERS:
            if self.select is not None and checker.code not in self.select:
                continue
            if checker.code in self.ignore:
                continue
            chosen.append(checker)
        return chosen

    def project_checkers(self) -> list[type[ProjectChecker]]:
        if not self.project:
            return []
        chosen: list[type[ProjectChecker]] = []
        for checker in ALL_PROJECT_CHECKERS:
            if self.select is not None and checker.code not in self.select:
                continue
            if checker.code in self.ignore:
                continue
            chosen.append(checker)
        return chosen


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_entries: list[BaselineEntry] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: the phase-2 index (None when the project phase was skipped)
    index: ProjectIndex | None = None

    @property
    def exit_code(self) -> int:
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline_entries": [e.to_dict()
                                       for e in self.stale_entries],
            "parse_errors": [f.to_dict() for f in self.parse_errors],
            "exit_code": self.exit_code,
        }


def lint_source(source: str, path: str = "<memory>",
                config: LintConfig | None = None) -> list[Finding]:
    """Lint one in-memory source blob (the pytest-facing entry)."""
    config = config or LintConfig()
    ctx = FileContext.parse(source, path)
    return run_checkers(ctx, config.checkers())


def _iter_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = (sorted(path.rglob("*.py")) if path.is_dir()
                      else [path])
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def run_lint(paths: Sequence[str | Path],
             config: LintConfig | None = None,
             baseline: Baseline | None = None,
             index: ProjectIndex | None = None) -> LintResult:
    """Lint files/directories (both phases) and apply the baseline.

    Pass a previous run's ``index`` to reuse its content-hash cache —
    unchanged files keep their phase-1 summaries.
    """
    config = config or LintConfig()
    result = LintResult()
    all_findings: list[Finding] = []
    parsed: list[Path] = []
    for path in _iter_files(paths):
        result.files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
            findings = lint_source(source, str(path), config)
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 1) or 1
            result.parse_errors.append(Finding(
                code="PAR000", message=str(error), path=str(path),
                line=line, col=0))
            continue
        parsed.append(path)
        all_findings.extend(findings)
    project_checkers = config.project_checkers()
    if project_checkers and parsed:
        result.index = ProjectIndex.build(parsed, previous=index)
        all_findings.extend(
            run_project_checkers(result.index, project_checkers))
    if baseline is not None:
        fresh, absorbed, stale = baseline.apply(all_findings)
        result.findings = fresh
        result.baselined = absorbed
        result.stale_entries = stale
    else:
        result.findings = all_findings
    return result


def run_fix(paths: Sequence[str | Path],
            config: LintConfig | None = None) -> tuple[int, int]:
    """Apply autofixes in place; returns (fixes applied, files changed).

    Runs a full (baseline-free) lint to collect findings, then rewrites
    each file whose findings have a known mechanical fix.
    """
    result = run_lint(paths, config, baseline=None)
    by_path: dict[str, list[Finding]] = {}
    for finding in result.findings:
        if finding.code in FIXABLE_CODES:
            by_path.setdefault(finding.path, []).append(finding)
    fixes = files = 0
    for path, findings in sorted(by_path.items()):
        target = Path(path)
        source = target.read_text(encoding="utf-8")
        fixed, applied = apply_fixes(source, findings)
        if applied and fixed != source:
            target.write_text(fixed, encoding="utf-8")
            files += 1
            fixes += applied
    return fixes, files


# -- reporting -------------------------------------------------------------


def render_text(result: LintResult, stream: TextIO) -> None:
    for finding in result.parse_errors:
        print(finding.render(), file=stream)
    for finding in result.findings:
        print(finding.render(), file=stream)
        if finding.snippet:
            print(f"    {finding.snippet}", file=stream)
    for entry in result.stale_entries:
        print(f"note: stale baseline entry {entry.fingerprint} "
              f"({entry.code} {entry.path}) — violation fixed; "
              f"regenerate with --update-baseline", file=stream)
    counts = (f"{result.files_checked} files, "
              f"{len(result.findings)} findings")
    if result.baselined:
        counts += f", {len(result.baselined)} baselined"
    if result.parse_errors:
        counts += f", {len(result.parse_errors)} parse errors"
    print(f"reprolint: {counts}", file=stream)


def render_json(result: LintResult, stream: TextIO) -> None:
    json.dump(result.to_dict(), stream, indent=2, sort_keys=True)
    stream.write("\n")


# -- CLI -------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install reprolint's flags on a (sub)parser."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline JSON (default: "
                             f"{DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="absorb current findings into the "
                             "baseline and exit 0")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run")
    parser.add_argument("--ignore", default="",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-project", action="store_true",
                        help="skip phase 2 (cross-module checkers)")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical autofixes in place "
                             "before linting")
    parser.add_argument("--check-idempotent", action="store_true",
                        help="with --fix: run a second fix pass and "
                             "fail (exit 2) if it changes anything")


def _codes(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(code.strip() for code in raw.split(",")
                     if code.strip())


def main(args: argparse.Namespace,
         stream: TextIO | None = None) -> int:
    """Entry point shared by ``python -m repro lint`` and tests."""
    stream = stream or sys.stdout
    if args.list_rules:
        for code, charter in sorted(RULES.items()):
            print(f"{code}  {charter}", file=stream)
        return 0
    unknown = ((_codes(args.select) or frozenset())
               | (_codes(args.ignore) or frozenset())) - set(RULES)
    if unknown:
        print(f"unknown rule code(s): {', '.join(sorted(unknown))}",
              file=stream)
        return 2
    config = LintConfig(select=_codes(args.select),
                        ignore=_codes(args.ignore) or frozenset(),
                        project=not getattr(args, "no_project", False))

    if getattr(args, "check_idempotent", False) and not args.fix:
        print("--check-idempotent requires --fix", file=stream)
        return 2
    if getattr(args, "fix", False):
        fixes, files = run_fix(args.paths, config)
        print(f"fix: applied {fixes} fixes in {files} files",
              file=stream)
        if args.check_idempotent:
            second, _ = run_fix(args.paths, config)
            if second:
                print(f"--check-idempotent: second pass applied "
                      f"{second} further fixes; autofixes did not "
                      f"converge", file=stream)
                return 2

    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
            if not baseline_path.exists() and not args.update_baseline:
                print(f"baseline not found: {baseline_path}",
                      file=stream)
                return 2
        elif DEFAULT_BASELINE.exists():
            baseline_path = DEFAULT_BASELINE
    baseline = (Baseline.load(baseline_path)
                if baseline_path and baseline_path.exists() else None)

    if args.update_baseline:
        target = baseline_path or Path(args.baseline or DEFAULT_BASELINE)
        raw = run_lint(args.paths, config, baseline=None)
        if raw.parse_errors:
            render_text(raw, stream)
            return 2
        Baseline.from_findings(raw.findings, previous=baseline
                               ).save(target)
        print(f"wrote {target} ({len(raw.findings)} findings "
              f"absorbed)", file=stream)
        return 0

    result = run_lint(args.paths, config, baseline=baseline)
    if args.format == "json":
        render_json(result, stream)
    elif args.format == "sarif":
        render_sarif(result, stream)
    else:
        render_text(result, stream)
    return result.exit_code
