"""CLK001 — wall-clock reads inside sim-owned packages.

The simulation's only time source is ``Engine.now`` (or the injected
``MonotonicClock``/``VirtualClock`` seam from the checkpoint pipeline).
A direct ``time.time()`` in sim-owned code couples event timestamps to
the host, which shows up as golden-trace diffs that depend on machine
load — the worst kind of flake to bisect.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.lint.walker import Checker

_TIME_FUNCS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.sleep",
})

#: always wall-clock regardless of arguments
_DATETIME_ALWAYS = frozenset({
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: wall-clock only when called without arguments (an explicit tz
#: argument still reads the wall clock, but argless is the classic slip)
_DATETIME_ARGLESS = frozenset({"datetime.datetime.now"})


class ClockChecker(Checker):
    code = "CLK001"
    interests = (ast.Call,)

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        if not self.ctx.sim_owned or self.ctx.blessed_seam:
            return
        assert isinstance(node, ast.Call)
        dotted, imported = self.ctx.resolve(node.func)
        if not imported or dotted is None:
            return
        if dotted in _TIME_FUNCS:
            self.report(
                node,
                f"{dotted}() reads the host clock in sim-owned code; "
                f"use engine.now or the injected Clock seam")
        elif dotted in _DATETIME_ALWAYS or (
                dotted in _DATETIME_ARGLESS
                and not node.args and not node.keywords):
            self.report(
                node,
                f"{dotted}() reads the host clock in sim-owned code; "
                f"derive timestamps from simulated time")
