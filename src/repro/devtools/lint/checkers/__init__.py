"""The reprolint rule registry: one checker class per rule code."""

from repro.devtools.lint.checkers.clock import ClockChecker
from repro.devtools.lint.checkers.defaults import MutableDefaultChecker
from repro.devtools.lint.checkers.exceptions import ExceptionChecker
from repro.devtools.lint.checkers.floats import FloatSumChecker
from repro.devtools.lint.checkers.listeners import ListenerChecker
from repro.devtools.lint.checkers.ordering import OrderingChecker
from repro.devtools.lint.checkers.randomness import RandomnessChecker

#: every built-in checker, in rule-code order.
ALL_CHECKERS = (
    RandomnessChecker,
    ClockChecker,
    OrderingChecker,
    ExceptionChecker,
    ListenerChecker,
    FloatSumChecker,
    MutableDefaultChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "ClockChecker",
    "ExceptionChecker",
    "FloatSumChecker",
    "ListenerChecker",
    "MutableDefaultChecker",
    "OrderingChecker",
    "RandomnessChecker",
]
