"""The reprolint rule registry: one checker class per rule code.

Two tiers: :data:`ALL_CHECKERS` are file-local (phase 1, one shared
AST walk per file); :data:`ALL_PROJECT_CHECKERS` are cross-module
(phase 2, run against the :class:`~repro.devtools.lint.project.\
ProjectIndex` built over the whole tree).
"""

from repro.devtools.lint.checkers.clock import ClockChecker
from repro.devtools.lint.checkers.defaults import MutableDefaultChecker
from repro.devtools.lint.checkers.exceptions import ExceptionChecker
from repro.devtools.lint.checkers.floats import FloatSumChecker
from repro.devtools.lint.checkers.imports import ImportTaintChecker
from repro.devtools.lint.checkers.listeners import ListenerChecker
from repro.devtools.lint.checkers.ordering import OrderingChecker
from repro.devtools.lint.checkers.pairing import (PairingChecker,
                                                  SpanPairChecker)
from repro.devtools.lint.checkers.randomness import RandomnessChecker
from repro.devtools.lint.checkers.streams import StreamRegistryChecker
from repro.devtools.lint.checkers.tracer import TracerSeamChecker

#: every file-local checker, in rule-code order.
ALL_CHECKERS = (
    RandomnessChecker,
    ClockChecker,
    OrderingChecker,
    ExceptionChecker,
    ListenerChecker,
    FloatSumChecker,
    MutableDefaultChecker,
)

#: every cross-module checker, in rule-code order.
ALL_PROJECT_CHECKERS = (
    StreamRegistryChecker,
    TracerSeamChecker,
    PairingChecker,
    SpanPairChecker,
    ImportTaintChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "ALL_PROJECT_CHECKERS",
    "ClockChecker",
    "ExceptionChecker",
    "FloatSumChecker",
    "ImportTaintChecker",
    "ListenerChecker",
    "MutableDefaultChecker",
    "OrderingChecker",
    "PairingChecker",
    "RandomnessChecker",
    "SpanPairChecker",
    "StreamRegistryChecker",
    "TracerSeamChecker",
]
