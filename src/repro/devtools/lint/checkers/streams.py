"""SEED001 — RNG streams must come from the declared registry.

Chaos subsystems isolate their randomness by seeding a dedicated
generator at ``seed + offset``; the offsets live in
``repro.chaos.streams.STREAM_OFFSETS``.  A literal ``seed + N`` whose
``N`` is not registered is either a typo or a brand-new stream that
silently reuses (or will later collide with) an existing subsystem's
offset — which perturbs every golden trace that touches the shared
stream.  Registry entries with duplicate offsets are reported on the
registry itself.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.project import (ProjectChecker, ProjectIndex,
                                         dotted_text)

#: where the registry lives and what it is called
REGISTRY_MODULE = "repro.chaos.streams"
REGISTRY_NAME = "STREAM_OFFSETS"

#: seeded-generator factories whose first argument is the stream seed
_RNG_FACTORIES = frozenset({
    "numpy.random.default_rng", "random.Random",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.Philox",
})


def _literal_offset(arg: ast.expr) -> int | None:
    """``N`` when ``arg`` is ``<seed-ish> + N`` (or ``N + <seed-ish>``)."""
    if not isinstance(arg, ast.BinOp) or not isinstance(arg.op, ast.Add):
        return None
    for name_side, const_side in ((arg.left, arg.right),
                                  (arg.right, arg.left)):
        if not (isinstance(const_side, ast.Constant)
                and isinstance(const_side.value, int)
                and not isinstance(const_side.value, bool)):
            continue
        dotted = dotted_text(name_side)
        if dotted and dotted.split(".")[-1].endswith("seed"):
            return const_side.value
    return None


class StreamRegistryChecker(ProjectChecker):
    code = "SEED001"

    def __init__(self, index: ProjectIndex) -> None:
        super().__init__(index)
        self.registry: dict[str, int] = {}

    def run(self) -> None:
        self._load_registry()
        declared = set(self.registry.values())
        for info in self.index.modules.values():
            if not info.sim_owned or info.name == REGISTRY_MODULE:
                continue
            for node in ast.walk(info.ctx.tree):
                if not (isinstance(node, ast.Call) and node.args):
                    continue
                dotted, imported = info.ctx.resolve(node.func)
                if not imported or dotted not in _RNG_FACTORIES:
                    continue
                offset = _literal_offset(node.args[0])
                if offset is None or offset in declared:
                    continue
                if self.registry:
                    hint = (f"declare a subsystem offset in "
                            f"{REGISTRY_MODULE}.{REGISTRY_NAME} and "
                            f"derive via stream_rng()")
                else:
                    hint = (f"no registry found at "
                            f"{REGISTRY_MODULE}.{REGISTRY_NAME}")
                self.report(
                    info, node.lineno, node.col_offset,
                    f"seed + {offset} is not a registered RNG stream "
                    f"offset; {hint}")

    def _load_registry(self) -> None:
        module = self.index.modules.get(REGISTRY_MODULE)
        if module is None:
            return
        table = module.const_dicts.get(REGISTRY_NAME)
        if table is None:
            return
        by_offset: dict[int, str] = {}
        for subsystem, offset in table.values:
            owner = by_offset.setdefault(offset, subsystem)
            if owner != subsystem:
                self.report(
                    module, table.line, table.col,
                    f"stream registry collision: {subsystem!r} and "
                    f"{owner!r} both declare offset +{offset}; "
                    f"colliding subsystems share one RNG stream and "
                    f"perturb each other's golden traces")
        self.registry = table.as_dict()
