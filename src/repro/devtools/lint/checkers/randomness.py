"""RNG001 — unseeded / process-global entropy sources.

Every byte of randomness in this repository must flow through an
injected, seeded ``random.Random`` or ``numpy.random.Generator``; a
single global draw silently detaches a run from its seed and every
golden trace built on it.  Builtin ``hash()`` belongs here too: string
hashing is randomized per process (PYTHONHASHSEED), so hash-derived
seeds and hash-bucketed features differ across runs even when every
explicit seed matches.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.lint.walker import Checker

#: numpy.random attributes that are fine to touch: seeded construction.
_NUMPY_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: random-module attributes that construct a seedable instance.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: misc process-entropy callables, always wrong in this codebase.
_FORBIDDEN = {
    "os.urandom": "os.urandom() is process entropy",
    "uuid.uuid1": "uuid.uuid1() depends on host clock and MAC",
    "uuid.uuid4": "uuid.uuid4() is process entropy",
    "secrets.token_bytes": "secrets.* is process entropy",
    "secrets.token_hex": "secrets.* is process entropy",
    "secrets.randbelow": "secrets.* is process entropy",
}


class RandomnessChecker(Checker):
    code = "RNG001"
    interests = (ast.Call,)

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        assert isinstance(node, ast.Call)
        dotted, imported = self.ctx.resolve(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if imported and parts[0] == "random" and len(parts) == 2:
            if parts[1] not in _RANDOM_ALLOWED:
                self.report(
                    node,
                    f"global random.{parts[1]}() draws from the shared "
                    f"module RNG; inject a seeded random.Random "
                    f"instead")
        elif (imported and len(parts) == 3
                and parts[0] == "numpy" and parts[1] == "random"
                and parts[2] not in _NUMPY_ALLOWED):
            self.report(
                node,
                f"legacy numpy.random.{parts[2]}() uses the global "
                f"numpy RNG; use numpy.random.default_rng(seed)")
        elif not imported and dotted == "hash":
            self.report(
                node,
                "builtin hash() is randomized per process "
                "(PYTHONHASHSEED); use zlib.crc32/hashlib for stable "
                "values")
        elif imported and dotted in _FORBIDDEN:
            self.report(
                node,
                f"{_FORBIDDEN[dotted]}; all randomness must come from "
                f"an injected seeded generator")
