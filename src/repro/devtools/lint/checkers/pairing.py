"""LSN002/SPAN001 — flow-aware paired-resource tracking across methods.

LSN001 only asks "does the module mention the release call somewhere?".
These rules use the :class:`~repro.devtools.lint.project.ProjectIndex`
class summaries to demand an *exit-safe* release for every acquisition
a class makes:

* a release is exit-safe when it sits inside a ``finally`` block, OR
  inside a conventional teardown method (``close``, ``__exit__``,
  ``detach``, ``stop``, ...), OR is an unconditional top-level
  statement of its method (it dominates every exit);
* ``add_listener`` pairs with ``remove_listener``, ``attach`` with
  ``detach`` (**LSN002**);
* ``tracer.begin(...)`` pairs with a ``.end(...)`` call somewhere in
  the class (**SPAN001**) — begin/end legitimately live in different
  engine callbacks, so only existence is required, but a class that
  opens spans and never closes any leaves them dangling in every
  export.
"""

from __future__ import annotations

from repro.devtools.lint.project import (TEARDOWN_METHODS, CallSite,
                                         ClassSummary, ProjectChecker)

#: acquisition attr -> required release attr
_RESOURCE_PAIRS = {
    "add_listener": "remove_listener",
    "attach": "detach",
}


def _exit_safe(site: CallSite) -> bool:
    return (site.in_finally
            or site.method in TEARDOWN_METHODS
            or site.top_level)


def _class_defines(cls: ClassSummary, attr: str) -> bool:
    """True when the class defines ``attr`` as its own method — it is
    the resource API owner, not a consumer."""
    return attr in cls.methods


class PairingChecker(ProjectChecker):
    code = "LSN002"

    def run(self) -> None:
        for info in self.index.modules.values():
            if not info.sim_owned:
                continue
            for cls in info.classes.values():
                self._check_class(info, cls)

    def _check_class(self, info, cls: ClassSummary) -> None:
        for acquire_attr, release_attr in _RESOURCE_PAIRS.items():
            if _class_defines(cls, acquire_attr):
                continue
            acquires = [c for c in cls.calls if c.attr == acquire_attr]
            if not acquires:
                continue
            releases = [c for c in cls.calls if c.attr == release_attr]
            if not releases:
                for site in acquires:
                    self.report(
                        info, site.line, site.col,
                        f"{cls.name}.{site.method} calls "
                        f"{acquire_attr}() but no method of "
                        f"{cls.name} ever calls {release_attr}(); "
                        f"the resource leaks across runs")
                continue
            if not any(_exit_safe(site) for site in releases):
                site = acquires[0]
                self.report(
                    info, site.line, site.col,
                    f"{cls.name} releases {acquire_attr}() only on "
                    f"conditional paths; move {release_attr}() into "
                    f"a finally block or a teardown method "
                    f"({', '.join(sorted(TEARDOWN_METHODS)[:4])}, ...)")


class SpanPairChecker(ProjectChecker):
    code = "SPAN001"

    def run(self) -> None:
        for info in self.index.modules.values():
            if not info.sim_owned or info.name.startswith("repro.obs"):
                continue
            for cls in info.classes.values():
                begins = [c for c in cls.calls
                          if c.attr == "begin"
                          and "tracer" in c.receiver.lower()]
                if not begins:
                    continue
                if any(c.attr == "end" for c in cls.calls):
                    continue
                site = begins[0]
                self.report(
                    info, site.line, site.col,
                    f"{cls.name}.{site.method} opens spans with "
                    f"tracer.begin() but no method of {cls.name} "
                    f"ever calls .end(); spans stay open in every "
                    f"trace export")
