"""LSN001 — engine listeners registered without a removal path.

``Engine.add_listener`` hooks run after *every* simulation event.  A
module that registers listeners but never calls ``remove_listener``
leaks them across chaos scenarios: the second run of a harness in one
process fires the first run's invariant checker against the wrong
state.  Every module that adds a listener must also contain the
matching removal (typically in a ``finally`` at the end of the run).
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.lint.walker import Checker

_PAIRS = {"add_listener": "remove_listener"}


class ListenerChecker(Checker):
    code = "LSN001"
    interests = (ast.Call,)

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._adds: list[tuple[ast.Call, str]] = []
        self._removals: set[str] = set()

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        if not self.ctx.sim_owned:
            return
        assert isinstance(node, ast.Call)
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr in _PAIRS:
            self._adds.append((node, attr))
        elif attr in _PAIRS.values():
            self._removals.add(attr)

    def finish(self) -> None:
        for node, attr in self._adds:
            if _PAIRS[attr] not in self._removals:
                self.report(
                    node,
                    f"{attr}() with no {_PAIRS[attr]}() anywhere in "
                    f"this module; the listener leaks across "
                    f"scenarios")
