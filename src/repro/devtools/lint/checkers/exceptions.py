"""EXC001 — silent exception swallowing in recovery/checkpoint paths.

A bare ``except: pass`` in a recovery path converts a storage outage or
a poisoned checkpoint into *nothing happened*, which is how real
incidents hide until the restore that needed the data.  Handlers in
sim-owned packages must re-raise, log, or record what they caught; a
genuinely best-effort swallow needs an inline suppression explaining
why.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.lint.walker import Checker

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler_type: ast.AST | None, ctx) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(el, ctx) for el in handler_type.elts)
    dotted, imported = ctx.resolve(handler_type)
    return not imported and dotted in _BROAD


def _is_silent(body: list[ast.stmt]) -> bool:
    """True when the handler neither raises, calls, nor records."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue  # docstring / ellipsis
        return False
    return True


class ExceptionChecker(Checker):
    code = "EXC001"
    interests = (ast.ExceptHandler,)

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        if not self.ctx.sim_owned:
            return
        assert isinstance(node, ast.ExceptHandler)
        if _is_broad(node.type, self.ctx) and _is_silent(node.body):
            what = ("bare except" if node.type is None
                    else "over-broad except")
            self.report(
                node,
                f"{what} swallows the error without re-raise, logging, "
                f"or bookkeeping; record what was caught or narrow the "
                f"exception type")
