"""MUT001 — mutable default arguments.

A mutable default is shared by every call of the function; in a
simulator it additionally leaks state *between scenarios*, turning the
second seeded run of a process into a different trajectory than the
first.  Use ``None`` plus an in-body default instead.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.lint.walker import Checker

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
_MUTABLE_DOTTED = frozenset({
    "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
})


class MutableDefaultChecker(Checker):
    code = "MUT001"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda))
        defaults = [d for d in node.args.defaults if d is not None]
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if self._is_mutable(default):
                name = getattr(node, "name", "<lambda>")
                self.report(
                    default,
                    f"mutable default argument in {name}(); the value "
                    f"is shared across calls — default to None and "
                    f"construct in the body")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted, imported = self.ctx.resolve(node.func)
            if not imported and dotted in _MUTABLE_CALLS:
                return True
            if imported and dotted in _MUTABLE_DOTTED:
                return True
        return False
