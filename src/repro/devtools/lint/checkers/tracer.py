"""TRC001 — the ``tracer=None → NULL_TRACER`` seam, project-wide.

Two prongs:

* **Seam shape.** Any class whose ``__init__`` accepts ``tracer`` must
  default it to ``None`` and normalize with ``tracer or NULL_TRACER``
  (or the explicit ``if tracer is not None`` form), where
  ``NULL_TRACER`` resolves — possibly through package re-exports — to
  :data:`repro.obs.tracer.NULL_TRACER`.  Anything else either forces
  callers to build a tracer or records through a half-initialized one,
  and untraced runs stop being byte-identical.
* **Untraced surfaces.** A sim-owned class that drives the simulation
  :class:`~repro.sim.engine.Engine` but never mentions a tracer is an
  observability hole: its time is invisible to span-based analysis.
  Infrastructure below the seam (``repro.sim``, ``repro.obs``) is
  exempt, as are dataclasses and exception types.
"""

from __future__ import annotations

from repro.devtools.lint.project import ProjectChecker

#: canonical identities after re-export resolution
_NULL_TRACER = "repro.obs.tracer.NULL_TRACER"
_ENGINE = "repro.sim.engine.Engine"

#: packages below the seam: they implement it, they don't consume it
_EXEMPT_PREFIXES = ("repro.sim", "repro.obs", "repro.devtools")


def _exempt(module_name: str) -> bool:
    return any(module_name == prefix or
               module_name.startswith(prefix + ".")
               for prefix in _EXEMPT_PREFIXES)


class TracerSeamChecker(ProjectChecker):
    code = "TRC001"

    def run(self) -> None:
        for info in self.index.modules.values():
            if not info.sim_owned or _exempt(info.name):
                continue
            for cls in info.classes.values():
                if cls.has_tracer_param:
                    self._check_seam_shape(info, cls)
                else:
                    self._check_untraced(info, cls)

    def _check_seam_shape(self, info, cls) -> None:
        if not cls.tracer_default_none:
            self.report(
                info, cls.tracer_line, cls.tracer_col,
                f"{cls.name}.__init__ tracer parameter must default "
                f"to None so untraced construction stays the cheap "
                f"path")
        fallbacks = {self.index.canonical_use(name)
                     for name in cls.tracer_fallbacks}
        if _NULL_TRACER not in fallbacks and not cls.tracer_delegated:
            self.report(
                info, cls.tracer_line, cls.tracer_col,
                f"{cls.name}.__init__ accepts tracer but never "
                f"normalizes it via NULL_TRACER (expected "
                f"`tracer or NULL_TRACER`); None would flow into "
                f"instrumentation points")

    def _check_untraced(self, info, cls) -> None:
        # private helpers (adapters, clock shims) are implementation
        # detail, not subsystem surfaces
        if cls.name.startswith("_"):
            return
        if cls.is_dataclass or cls.mentions_tracer:
            return
        if any(base.split(".")[-1].endswith(("Error", "Exception"))
               for base in cls.bases):
            return
        uses = {self.index.canonical_use(name) for name in cls.uses}
        if _ENGINE in uses:
            self.report(
                info, cls.line, cls.col,
                f"{cls.name} drives the simulation Engine but exposes "
                f"no tracer seam; untraced surface — accept "
                f"`tracer: TracerLike | None = None` and normalize "
                f"via NULL_TRACER")
