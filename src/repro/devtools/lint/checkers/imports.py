"""IMP001 — transitive import taint toward the host machine.

Sim-owned packages must stay deterministic: no threads, no wall-clock
module, no sockets — not even *indirectly* through another project
module.  This checker propagates taint over the project import graph:

* a module is directly tainted when it imports one of the taint roots
  (``threading``, ``time``, ``multiprocessing``, socket/network
  modules, ``asyncio``, ``concurrent``);
* taint flows to every importer, except through the **blessed seams**
  (:data:`~repro.devtools.lint.project.BLESSED_SEAMS`) — the declared
  clock/storage boundary modules absorb taint and are themselves
  exempt;
* findings land on sim-owned modules, anchored at the import statement
  that reaches the taint, with the full witness chain in the message.
"""

from __future__ import annotations

import ast

from repro.devtools.lint.project import (BLESSED_SEAMS, ModuleInfo,
                                         ProjectChecker,
                                         _import_targets)

#: stdlib roots that couple sim code to the host machine
TAINT_ROOTS = frozenset({
    "threading", "time", "multiprocessing", "socket", "ssl",
    "socketserver", "http", "urllib", "requests", "asyncio",
    "concurrent",
})


class ImportTaintChecker(ProjectChecker):
    code = "IMP001"

    def run(self) -> None:
        tainted = self._propagate()
        for info in self.index.modules.values():
            if not info.sim_owned or info.blessed_seam:
                continue
            self._check_module(info, tainted)

    def _propagate(self) -> dict[str, tuple[str, ...]]:
        """module name -> witness chain ending at a taint root."""
        tainted: dict[str, tuple[str, ...]] = {}
        for info in self.index.modules.values():
            if info.blessed_seam:
                continue
            for target in sorted(info.module_imports):
                if target.split(".")[0] in TAINT_ROOTS:
                    tainted[info.name] = (target,)
                    break
        changed = True
        while changed:
            changed = False
            for info in self.index.modules.values():
                if info.name in tainted or info.blessed_seam:
                    continue
                for target in sorted(info.module_imports):
                    dep = self.index.project_module(target)
                    if dep and dep != info.name and dep in tainted:
                        tainted[info.name] = (dep,) + tainted[dep]
                        changed = True
                        break
        return tainted

    def _check_module(self, info: ModuleInfo,
                      tainted: dict[str, tuple[str, ...]]) -> None:
        is_package = info.path.stem == "__init__"
        for node in info.ctx.tree.body:
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _import_targets(node, info.name, is_package):
                root = target.split(".")[0]
                if root in TAINT_ROOTS:
                    self.report(
                        info, node.lineno, node.col_offset,
                        f"sim-owned module imports {target} directly; "
                        f"route through the engine clock or a blessed "
                        f"seam ({', '.join(sorted(BLESSED_SEAMS))})")
                    continue
                dep = self.index.project_module(target)
                if dep and dep != info.name and dep in tainted:
                    chain = " -> ".join((info.name, dep)
                                        + tainted[dep])
                    self.report(
                        info, node.lineno, node.col_offset,
                        f"sim-owned module reaches "
                        f"{tainted[dep][-1]} transitively: {chain}; "
                        f"break the chain or bless the seam module")
