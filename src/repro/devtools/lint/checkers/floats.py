"""FLT001 — naive float accumulation in loops.

``total += x`` in a loop accumulates rounding error whose exact value
depends on summation order and platform FMA behaviour; two machines can
produce traces that differ in the last ulp, which a byte-compared
golden file treats as a failure.  Accumulate with ``math.fsum`` over a
collected sequence, or keep tick counters in integers.

Detection is deliberately local and precise: a function-scope name
initialized to a float constant and ``+=``-ed inside a loop in the same
scope.  Cross-method attribute accumulators are out of scope (too many
false positives to gate CI on).
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.lint.walker import Checker, scoped_walk


def _float_accumulators(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in scoped_walk(scope):
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and type(node.value.value) is float):
            names.add(node.targets[0].id)
    return names


class FloatSumChecker(Checker):
    code = "FLT001"
    interests = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        if not self.ctx.sim_owned:
            return
        accumulators = _float_accumulators(node)
        if not accumulators:
            return
        self._walk(node, accumulators, in_loop=False)

    def _walk(self, node: ast.AST, accumulators: set[str],
              in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue  # separate scope, dispatched on its own
            child_in_loop = in_loop or isinstance(
                child, (ast.For, ast.AsyncFor, ast.While))
            if (in_loop and isinstance(child, ast.AugAssign)
                    and isinstance(child.op, ast.Add)
                    and isinstance(child.target, ast.Name)
                    and child.target.id in accumulators):
                self.report(
                    child,
                    f"float accumulator {child.target.id!r} grows "
                    f"with += in a loop; use math.fsum or integer "
                    f"ticks for trace-stable totals")
            self._walk(child, accumulators, child_in_loop)
