"""ORD001 — iteration order that depends on hashing or allocation.

Set iteration order follows string hashing, which is randomized per
process; ``id()``-keyed ordering follows allocator layout.  Either one
feeding an order-sensitive sink (heap pushes, appended event logs,
insertion-sorted lists) is the classic golden-trace flake: correct
output, different order, byte-diff against the pinned trace.  Wrap the
iterable in ``sorted(...)`` or key on a stable field instead.
"""

from __future__ import annotations

import ast
from typing import Sequence

from repro.devtools.lint.walker import Checker, scoped_walk

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

_KEYED_SORTERS = frozenset({"sorted", "min", "max"})


def _local_set_bindings(scope: ast.AST, ctx) -> set[str]:
    """Names assigned a syntactically-evident set within this scope."""
    names: set[str] = set()
    for node in scoped_walk(scope):
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_set_expr(node.value, ctx, names)):
            names.add(node.targets[0].id)
    return names


def _is_set_expr(node: ast.AST, ctx, local_sets: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.Call):
        dotted, imported = ctx.resolve(node.func)
        if not imported and dotted in ("set", "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and _is_set_expr(node.func.value, ctx, local_sets)):
            return True
    return False


class OrderingChecker(Checker):
    code = "ORD001"
    interests = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef,
                 ast.Call)

    def handle(self, node: ast.AST,
               ancestors: Sequence[ast.AST]) -> None:
        if isinstance(node, ast.Call):
            self._check_id_keyed(node)
            return
        local_sets = _local_set_bindings(node, self.ctx)
        for child in scoped_walk(node):
            iters: list[ast.AST] = []
            if isinstance(child, (ast.For, ast.AsyncFor)):
                iters.append(child.iter)
            elif isinstance(child, (ast.ListComp, ast.SetComp,
                                    ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in child.generators)
            for it in iters:
                if _is_set_expr(it, self.ctx, local_sets):
                    self.report(
                        it,
                        "iterating a set: order follows per-process "
                        "string hashing; wrap in sorted(...) before "
                        "feeding order-sensitive sinks")

    def _check_id_keyed(self, node: ast.Call) -> None:
        dotted, imported = self.ctx.resolve(node.func)
        is_sorter = ((not imported and dotted in _KEYED_SORTERS)
                     or (isinstance(node.func, ast.Attribute)
                         and node.func.attr == "sort"))
        if not is_sorter:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            key_dotted, key_imported = self.ctx.resolve(keyword.value)
            if not key_imported and key_dotted == "id":
                self.report(
                    keyword.value,
                    "ordering keyed on id() depends on allocator "
                    "layout; key on a stable field instead")
