"""Autofixes for the mechanical rules (``lint --fix``).

Only transformations whose correctness is evident from the AST are
attempted:

* **ORD001** — wrap a set iterable in ``sorted(...)``.  The finding
  anchors the iterable expression; the fix splices ``sorted(`` / ``)``
  around its exact span (single-line spans only).
* **TRC001** (seam shape only) — add the missing ``= None`` default to
  a ``tracer`` parameter, and rewrite a bare ``self.x = tracer``
  assignment in ``__init__`` to ``self.x = tracer or NULL_TRACER``,
  importing ``NULL_TRACER`` if the module does not already.

Untraced-surface TRC001 findings (instrumenting a whole class) and
every other rule need human judgment and are never auto-fixed.  Fixes
are applied bottom-up so earlier spans stay valid; a second ``--fix``
pass over fixed sources applies nothing (``--check-idempotent`` gates
this in CI).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.devtools.lint.findings import Finding

#: rule codes --fix knows how to rewrite
FIXABLE_CODES = frozenset({"ORD001", "TRC001"})

_NULL_IMPORT = "from repro.obs.tracer import NULL_TRACER"


@dataclass(frozen=True)
class _Edit:
    """Replace [start, end) offsets of the source with ``text``."""

    start: int
    end: int
    text: str


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _span_offsets(offsets: list[int], line: int, col: int,
                  end_line: int, end_col: int) -> tuple[int, int]:
    return offsets[line - 1] + col, offsets[end_line - 1] + end_col


def _fix_ord001(source: str, offsets: list[int],
                finding: Finding) -> _Edit | None:
    if not finding.end_line or finding.end_line < finding.line:
        return None
    start, end = _span_offsets(offsets, finding.line, finding.col,
                               finding.end_line, finding.end_col)
    text = source[start:end]
    if not text or text.startswith("sorted("):
        return None
    return _Edit(start, end, f"sorted({text})")


def _find_init_with_tracer(tree: ast.Module, line: int
                           ) -> ast.FunctionDef | None:
    """The ``__init__`` whose ``tracer`` arg sits on ``line``."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef)
                and node.name == "__init__"):
            continue
        args = node.args
        every = args.posonlyargs + args.args + args.kwonlyargs
        for arg in every:
            if arg.arg == "tracer" and arg.lineno == line:
                return node
    return None


def _tracer_arg_edit(source: str, offsets: list[int],
                     init: ast.FunctionDef) -> _Edit | None:
    """Append ``= None`` to a defaultless ``tracer`` parameter."""
    args = init.args
    positional = args.posonlyargs + args.args
    defaults: list[ast.expr | None] = [None] * (
        len(positional) - len(args.defaults)) + list(args.defaults)
    arg: ast.arg | None = None
    for candidate, default in zip(positional, defaults):
        if candidate.arg == "tracer":
            if default is not None:
                return None             # has a (wrong) default: punt
            arg = candidate
    for candidate, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if candidate.arg == "tracer":
            if kw_default is not None:
                return None
            arg = candidate
    if arg is None:
        return None
    end_line = arg.end_lineno or arg.lineno
    end_col = arg.end_col_offset or 0
    _, end = _span_offsets(offsets, arg.lineno, 0, end_line, end_col)
    text = " = None" if arg.annotation is not None else "=None"
    return _Edit(end, end, text)


def _tracer_normalize_edit(source: str, offsets: list[int],
                           init: ast.FunctionDef) -> _Edit | None:
    """Rewrite ``self.x = tracer`` to ``self.x = tracer or
    NULL_TRACER`` inside ``__init__``."""
    for node in ast.walk(init):
        if (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id == "tracer"):
            value = node.value
            start, end = _span_offsets(
                offsets, value.lineno, value.col_offset,
                value.end_lineno or value.lineno,
                value.end_col_offset or 0)
            return _Edit(start, end, "tracer or NULL_TRACER")
    return None


def _needs_null_import(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if any(alias.name == "NULL_TRACER"
                   for alias in node.names):
                return False
    return True


def _import_insertion(source: str, offsets: list[int],
                      tree: ast.Module) -> _Edit:
    """Insert the NULL_TRACER import after the last top-level import."""
    last_import_line = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import_line = node.end_lineno or node.lineno
    at = (offsets[last_import_line] if last_import_line
          else offsets[0])
    return _Edit(at, at, _NULL_IMPORT + "\n")


def apply_fixes(source: str, findings: list[Finding]
                ) -> tuple[str, int]:
    """Apply every known autofix; returns (new source, fixes applied)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source, 0
    offsets = _line_offsets(source)
    edits: list[_Edit] = []
    want_null_import = False
    for finding in findings:
        if finding.code == "ORD001":
            edit = _fix_ord001(source, offsets, finding)
            if edit is not None:
                edits.append(edit)
        elif finding.code == "TRC001":
            init = _find_init_with_tracer(tree, finding.line)
            if init is None:
                continue                # untraced-surface prong: punt
            if "default to None" in finding.message:
                edit = _tracer_arg_edit(source, offsets, init)
            elif "normalizes" in finding.message:
                edit = _tracer_normalize_edit(source, offsets, init)
                if edit is not None and _needs_null_import(tree):
                    want_null_import = True
            else:
                edit = None
            if edit is not None:
                edits.append(edit)
    if not edits:
        return source, 0
    applied = len(edits)
    if want_null_import:
        edits.append(_import_insertion(source, offsets, tree))
    # bottom-up, so earlier offsets stay valid; drop overlaps
    edits.sort(key=lambda e: (e.start, e.end), reverse=True)
    result = source
    last_start = len(source) + 1
    for edit in edits:
        if edit.end > last_start:
            applied -= 1
            continue
        result = result[:edit.start] + edit.text + result[edit.end:]
        last_start = edit.start
    return result, applied
