"""SARIF 2.1.0 reporter — GitHub code-scanning ingestible output.

One run object, the full rule catalogue as ``tool.driver.rules``, and
one result per fresh finding / parse error.  Baselined findings are
emitted with ``"baselineState": "unchanged"`` so code scanning shows
them as pre-existing rather than new.  Output is byte-deterministic
(sorted keys, stable result order follows the lint result).
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import TYPE_CHECKING, Any, TextIO

from repro.devtools.lint.findings import RULES, Finding

if TYPE_CHECKING:                       # pragma: no cover
    from repro.devtools.lint.runner import LintResult

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _rule(code: str, charter: str) -> dict[str, Any]:
    return {
        "id": code,
        "shortDescription": {"text": charter},
        "defaultConfiguration": {
            "level": "note" if code == "PAR000" else "error",
        },
    }


def _result(finding: Finding, *,
            baseline_state: str | None = None) -> dict[str, Any]:
    region: dict[str, Any] = {
        "startLine": finding.line,
        "startColumn": finding.col + 1,
    }
    if finding.end_line:
        region["endLine"] = finding.end_line
    if finding.end_col:
        region["endColumn"] = finding.end_col + 1
    if finding.snippet:
        region["snippet"] = {"text": finding.snippet}
    result: dict[str, Any] = {
        "ruleId": finding.code,
        "level": "note" if finding.code == "PAR000" else "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": PurePath(finding.path).as_posix(),
                },
                "region": region,
            },
        }],
        "partialFingerprints": {
            "reprolint/v1": finding.fingerprint(),
        },
    }
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def to_sarif(result: "LintResult") -> dict[str, Any]:
    """The SARIF log object for one lint run."""
    results = [_result(f) for f in result.parse_errors]
    results += [_result(f) for f in result.findings]
    results += [_result(f, baseline_state="unchanged")
                for f in result.baselined]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri":
                        "https://example.invalid/docs/LINT.md",
                    "rules": [_rule(code, charter) for code, charter
                              in sorted(RULES.items())],
                },
            },
            "results": results,
        }],
    }


def render_sarif(result: "LintResult", stream: TextIO) -> None:
    json.dump(to_sarif(result), stream, indent=2, sort_keys=True)
    stream.write("\n")
