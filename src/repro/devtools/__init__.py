"""Developer tooling that keeps the reproduction honest.

``repro.devtools.lint`` ("reprolint") is a purpose-built static-analysis
pass for this seeded discrete-event codebase: it mechanizes the
determinism conventions — seeded RNGs, clock seams, stable iteration
order — that every golden chaos trace and seed-stability test silently
depends on.  See ``docs/LINT.md`` for the rule catalogue.
"""

from repro.devtools.lint import Finding, LintConfig, LintResult, run_lint

__all__ = ["Finding", "LintConfig", "LintResult", "run_lint"]
