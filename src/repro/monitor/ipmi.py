"""IPMI-style server power telemetry (Figs. 8b, 9).

IPMI reports whole-server wall power and per-module sensors; combined with
DCGM's GPU draw this yields the module breakdown of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.monitor.dcgm import DcgmSampler
from repro.monitor.power import GpuPowerModel, ServerPowerModel


@dataclass(frozen=True)
class ServerPowerBreakdown:
    """Average watts per hardware module across the sampled fleet."""

    gpu: float
    cpu: float
    memory: float
    fans: float
    nic_and_drives: float
    psu_loss: float

    @property
    def total(self) -> float:
        return (self.gpu + self.cpu + self.memory + self.fans
                + self.nic_and_drives + self.psu_loss)

    def shares(self) -> dict[str, float]:
        """Module shares of total wall power."""
        total = self.total
        return {
            "gpu": self.gpu / total,
            "cpu": self.cpu / total,
            "memory": self.memory / total,
            "fans": self.fans / total,
            "nic_and_drives": self.nic_and_drives / total,
            "psu_loss": self.psu_loss / total,
        }


class IpmiSampler:
    """Aggregates server power over many polls."""

    def __init__(self, dcgm: DcgmSampler,
                 server_model: ServerPowerModel | None = None,
                 gpu_power: GpuPowerModel | None = None,
                 seed: int = 0) -> None:
        self.dcgm = dcgm
        self.server_model = server_model or ServerPowerModel()
        self.gpu_power = gpu_power or GpuPowerModel()
        self.seed = seed

    def server_power_samples(self, n_servers: int) -> np.ndarray:
        """Wall-power samples for ``n_servers`` servers."""
        return self.server_model.sample_servers(
            self.dcgm, n_servers, self.gpu_power, self.seed)

    def average_breakdown(self, n_servers: int = 200
                          ) -> ServerPowerBreakdown:
        """Fleet-average per-module watts (the Fig. 9 pie)."""
        rng = np.random.default_rng(self.seed)
        model = self.server_model
        gpu_total = 0.0
        wall_total = 0.0
        for _ in range(n_servers):
            draws = np.array([
                self.gpu_power.draw(sample, rng)
                for sample in self.dcgm.sample_many(model.gpus_per_server)])
            gpu_total += float(draws.sum())
            wall_total += model.total(draws)
        n = float(n_servers)
        psu = wall_total * model.psu_loss_fraction / n
        return ServerPowerBreakdown(
            gpu=gpu_total / n,
            cpu=model.cpu_watts,
            memory=model.memory_watts,
            fans=model.fans_watts,
            nic_and_drives=model.nic_and_drives_watts,
            psu_loss=psu,
        )

    def monthly_energy_mwh(self, n_servers: int, samples: int = 200
                           ) -> float:
        """Estimated fleet energy for a 30-day month, MWh."""
        mean_watts = float(self.server_power_samples(samples).mean())
        hours = 30 * 24.0
        return mean_watts * n_servers * hours / 1e6
