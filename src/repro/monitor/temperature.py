"""GPU temperature model (Fig. 21, Appendix A.5).

Temperature follows power draw with the server-room ambient as baseline.
The paper observes: GPU memory temperature consistently above core
temperature, a heavily-loaded mode above 65°C, and a ~5°C room-wide rise
while training communication-optimized 7B models in July 2023 — the
overheating that caused NVLink/ECC errors (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import NULL_TRACER, TracerLike


@dataclass
class TemperatureModel:
    """Maps GPU power draw to core and memory temperatures.

    ``ambient_offset`` models room conditions (e.g. +5°C during the July
    heat event before the cooling upgrade).
    """

    ambient_celsius: float = 28.0
    ambient_offset: float = 0.0
    #: °C of steady-state rise per watt of draw
    core_celsius_per_watt: float = 0.075
    #: HBM stacks run hotter than the die
    memory_delta: float = 9.0
    noise_sigma: float = 2.0

    def core_temperature(self, watts: float,
                         rng: np.random.Generator) -> float:
        """GPU die temperature for a power draw."""
        base = (self.ambient_celsius + self.ambient_offset
                + self.core_celsius_per_watt * watts)
        return float(base + rng.normal(0.0, self.noise_sigma))

    def memory_temperature(self, watts: float,
                           rng: np.random.Generator) -> float:
        """HBM temperature (runs hotter than the die)."""
        return self.core_temperature(watts, rng) + self.memory_delta

    def sample_fleet(self, power_draws: np.ndarray, seed: int = 0,
                     tracer: TracerLike | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """(core, memory) temperature arrays for a fleet of power draws.

        Traced through the ``tracer=None → NULL_TRACER`` seam;
        instrumentation never touches the RNG, so traced and untraced
        runs are byte-identical.
        """
        tracer = tracer or NULL_TRACER
        rng = np.random.default_rng(seed)
        core = np.array([self.core_temperature(w, rng)
                         for w in power_draws])
        memory = core + self.memory_delta
        tracer.count("monitor.temperature.samples",
                     float(len(power_draws)))
        if len(power_draws):
            tracer.set_gauge("monitor.temperature.mean_core_celsius",
                             float(core.mean()))
        return core, memory

    def overheating_risk_fraction(self, power_draws: np.ndarray,
                                  threshold: float = 65.0,
                                  seed: int = 0) -> float:
        """Fraction of GPUs whose core exceeds ``threshold`` °C."""
        core, _ = self.sample_fleet(power_draws, seed)
        return float((core > threshold).mean())
