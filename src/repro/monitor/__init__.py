"""Telemetry simulation: DCGM, IPMI, Prometheus, temperature, carbon.

The paper samples hardware monitors every 15 seconds (§2.3).  This package
reproduces those metric streams from the synthetic trace and the hardware
models, yielding the infrastructure-utilization CDFs (Fig. 7), the power
distributions and breakdown (Figs. 8/9), host-memory breakdown (Fig. 18),
GPU temperatures (Fig. 21), and the carbon-emission accounting (A.3).
"""

from repro.monitor.dcgm import DcgmSampler, GpuSample
from repro.monitor.power import (GpuPowerModel, PowerCappingModel,
                                ServerPowerModel)
from repro.monitor.ipmi import IpmiSampler, ServerPowerBreakdown
from repro.monitor.prometheus import PrometheusSampler, HostSample
from repro.monitor.temperature import TemperatureModel
from repro.monitor.carbon import CarbonModel, ACME_CARBON
from repro.monitor.hostmem import (HostMemoryBreakdown,
                                   pretraining_host_memory)
from repro.monitor.timeseries import (MetricStore, UtilizationSeries,
                                      record_cluster_utilization)

__all__ = [
    "DcgmSampler",
    "GpuSample",
    "GpuPowerModel",
    "PowerCappingModel",
    "ServerPowerModel",
    "IpmiSampler",
    "ServerPowerBreakdown",
    "PrometheusSampler",
    "HostSample",
    "TemperatureModel",
    "CarbonModel",
    "ACME_CARBON",
    "HostMemoryBreakdown",
    "pretraining_host_memory",
    "MetricStore",
    "UtilizationSeries",
    "record_cluster_utilization",
]
