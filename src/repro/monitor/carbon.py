"""Carbon-emission accounting (Appendix A.3).

Acme's reported figures: PUE 1.25, 30.61% carbon-free energy (2022), an
effective emission rate of 0.478 tCO2e/MWh, and — for May 2023 — 673 MWh
of node-level energy in Seren yielding 321.7 tCO2e.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CarbonModel:
    """Datacenter-level energy and emission conversions."""

    pue: float
    carbon_free_fraction: float
    #: effective emission rate applied to node-level energy, tCO2e/MWh
    emission_rate: float

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")
        if not 0.0 <= self.carbon_free_fraction <= 1.0:
            raise ValueError("carbon_free_fraction must be in [0, 1]")
        if self.emission_rate < 0:
            raise ValueError("emission_rate must be non-negative")

    def facility_energy_mwh(self, it_energy_mwh: float) -> float:
        """Total facility draw including cooling/overheads (PUE)."""
        if it_energy_mwh < 0:
            raise ValueError("energy must be non-negative")
        return it_energy_mwh * self.pue

    def effective_emissions_tco2e(self, node_energy_mwh: float) -> float:
        """Emissions as the paper reports them: node energy x rate."""
        if node_energy_mwh < 0:
            raise ValueError("energy must be non-negative")
        return node_energy_mwh * self.emission_rate

    def grid_emissions_tco2e(self, node_energy_mwh: float,
                             grid_rate: float = 0.689) -> float:
        """Alternative accounting from the raw grid rate.

        Facility energy x non-carbon-free share x grid intensity; with the
        default China-grid rate this lands near the paper's effective rate
        (1.25 * (1 - 0.3061) * 0.689 ≈ 0.60 vs the reported 0.478 —
        the residual reflects contracted renewables, so we expose both
        accountings).
        """
        facility = self.facility_energy_mwh(node_energy_mwh)
        return facility * (1.0 - self.carbon_free_fraction) * grid_rate


#: Acme's published parameters.
ACME_CARBON = CarbonModel(pue=1.25, carbon_free_fraction=0.3061,
                          emission_rate=0.478)

#: The Appendix A.3 worked example.
SEREN_MAY_2023_ENERGY_MWH = 673.0
SEREN_MAY_2023_EMISSIONS_TCO2E = 321.7
