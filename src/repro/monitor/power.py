"""GPU and server power models (Figs. 8/9).

Anchors from §3.4:

* idle A100s still draw ~60 W, and ~30% of GPUs are idle;
* 22.1% (Seren) / 12.5% (Kalos) of GPUs exceed the 400 W TDP, with
  excursions to 600 W;
* GPU servers draw ~5x the power of CPU-only servers;
* within a GPU server: GPUs ≈ 2/3 of power, CPUs 11.2%, PSU conversion
  loss 9.6%, the remainder is memory/fans/NICs/drives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import A100_SXM_80GB, GpuSpec
from repro.monitor.dcgm import DcgmSampler, GpuSample
from repro.obs import NULL_TRACER, TracerLike


@dataclass
class GpuPowerModel:
    """Maps instantaneous activity to electrical draw.

    Draw rises superlinearly with tensor-core activity (dense GEMMs light
    up the whole die); the transient factor models sub-sampling-interval
    spikes that push past TDP, which the paper links to metastable risk.
    """

    spec: GpuSpec = A100_SXM_80GB
    #: sub-sampling-interval power excursions (the paper observes draws
    #: to 600 W, well past the 400 W TDP)
    transient_sigma: float = 0.18
    #: watts per unit of combined activity — A100s training transformers
    #: at ~40% SM activity draw ~350 W (dense tensor work lights up far
    #: more of the die than the SM-activity fraction suggests)
    activity_gain: float = 1.45

    def draw(self, sample: GpuSample, rng: np.random.Generator) -> float:
        """Electrical draw for one sampled GPU state."""
        if sample.job_type is None:
            return float(self.spec.idle_watts * rng.uniform(0.95, 1.1))
        activity = 0.35 * sample.sm_activity + 0.65 * sample.tc_activity
        headroom = self.spec.peak_watts - self.spec.idle_watts
        base = self.spec.idle_watts + headroom * min(
            1.0, self.activity_gain * activity)
        transient = rng.lognormal(0.0, self.transient_sigma)
        return float(np.clip(base * transient, self.spec.idle_watts * 0.9,
                             self.spec.peak_watts))

    def sample_cluster(self, sampler: DcgmSampler, n: int,
                       seed: int = 0,
                       tracer: TracerLike | None = None) -> np.ndarray:
        """Draws for ``n`` DCGM samples.

        Instrumentation goes through the ``tracer=None → NULL_TRACER``
        seam and never consumes randomness: traced and untraced runs
        return byte-identical arrays.
        """
        tracer = tracer or NULL_TRACER
        rng = np.random.default_rng(seed)
        draws = np.array([self.draw(sample, rng)
                          for sample in sampler.sample_many(n)])
        tracer.count("monitor.power.samples", float(n))
        if n:
            tracer.set_gauge("monitor.power.mean_watts",
                             float(draws.mean()))
        return draws


@dataclass
class PowerCappingModel:
    """Maps fleet power/thermal state through a capping curve.

    When mean draw exceeds ``cap_watts`` the facility clamps GPU
    clocks; under the DVFS cube law (power ∝ f³ for the dynamic part)
    the achievable step-rate factor is ``(cap / draw) ** (1/3)``.  A
    fleet running hot past ``thermal_threshold_celsius`` is derated a
    further ``thermal_derate`` (Fig. 21's overheating regime).  The
    returned factor is what the chaos harness feeds into
    ``PretrainProcess.set_step_factor`` — the monitor models finally
    pushing back on training time.
    """

    cap_watts: float = 330.0
    #: DVFS exponent: perf ≈ (cap/draw)^exponent under clock capping
    exponent: float = 1.0 / 3.0
    thermal_threshold_celsius: float = 65.0
    thermal_derate: float = 0.05
    #: never model a cap harsher than 4x slowdown — facility caps keep
    #: the fleet productive, they don't park it
    min_step_factor: float = 0.25

    def step_factor(self, mean_draw_watts: float,
                    mean_core_celsius: float | None = None) -> float:
        """Step-rate factor in ``(0, 1]`` for the capped fleet."""
        if mean_draw_watts <= 0.0:
            raise ValueError("mean draw must be positive")
        factor = 1.0
        if mean_draw_watts > self.cap_watts:
            factor = (self.cap_watts / mean_draw_watts) ** self.exponent
        if (mean_core_celsius is not None
                and mean_core_celsius > self.thermal_threshold_celsius):
            factor *= 1.0 - self.thermal_derate
        return float(max(factor, self.min_step_factor))


@dataclass
class ServerPowerModel:
    """A GPU server's power by module, derived from its GPUs' draw.

    Component sizing reproduces the Fig. 9 averages: with 8 GPUs averaging
    ~300 W (≈2.4 kW), CPUs ~400 W, other components ~430 W, and a PSU that
    dissipates ~9.6% of the total during conversion.
    """

    gpus_per_server: int = 8
    cpu_watts: float = 400.0
    memory_watts: float = 150.0
    fans_watts: float = 200.0
    nic_and_drives_watts: float = 80.0
    psu_loss_fraction: float = 0.096

    def other_watts(self) -> float:
        """Memory + fans + NIC/drive power."""
        return (self.memory_watts + self.fans_watts
                + self.nic_and_drives_watts)

    def total(self, gpu_draws: np.ndarray) -> float:
        """Wall power for one server given its 8 GPUs' draws."""
        if gpu_draws.size != self.gpus_per_server:
            raise ValueError(
                f"expected {self.gpus_per_server} GPU draws, "
                f"got {gpu_draws.size}")
        it_power = (float(gpu_draws.sum()) + self.cpu_watts
                    + self.other_watts())
        return it_power / (1.0 - self.psu_loss_fraction)

    def breakdown(self, gpu_draws: np.ndarray) -> dict[str, float]:
        """Module shares of total wall power (Fig. 9)."""
        total = self.total(gpu_draws)
        psu = total * self.psu_loss_fraction
        return {
            "gpu": float(gpu_draws.sum()) / total,
            "cpu": self.cpu_watts / total,
            "memory": self.memory_watts / total,
            "fans": self.fans_watts / total,
            "nic_and_drives": self.nic_and_drives_watts / total,
            "psu_loss": psu / total,
        }

    def cpu_server_watts(self) -> float:
        """A CPU-only server (Fig. 8b's low mode, ~1/5 of a GPU server).

        CPU servers carry lower-TDP parts and far less cooling than a
        DGX-class chassis.
        """
        it_power = 500.0 + self.other_watts() * 0.35
        return it_power / (1.0 - self.psu_loss_fraction)

    def sample_servers(self, sampler: DcgmSampler, n_servers: int,
                       power_model: GpuPowerModel | None = None,
                       seed: int = 0,
                       tracer: TracerLike | None = None) -> np.ndarray:
        """Wall-power samples for ``n_servers`` GPU servers.

        Traced through the obs seam; instrumentation is off the RNG
        path, so traced and untraced runs are byte-identical.
        """
        tracer = tracer or NULL_TRACER
        power_model = power_model or GpuPowerModel()
        rng = np.random.default_rng(seed)
        totals = np.empty(n_servers)
        for i in range(n_servers):
            draws = np.array([
                power_model.draw(sample, rng)
                for sample in sampler.sample_many(self.gpus_per_server)])
            totals[i] = self.total(draws)
        tracer.count("monitor.power.server_samples", float(n_servers))
        if n_servers:
            tracer.set_gauge("monitor.power.mean_server_watts",
                             float(totals.mean()))
        return totals
