"""Host-memory breakdown of a pretraining node (Fig. 18, Appendix A.2).

The paper's worked example: a Seren node running pretraining uses 123 GB of
its 1 TB — training processes plus TensorBoard (6.5 GB), the distributed
file system client with data/metadata caches (45.3 GB), and 0.6 GB of
system daemons.  The large idle remainder is what makes asynchronous
checkpointing (§6.1) free: several checkpoint-sized buffers fit in spare
host memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

GIB = 1024 ** 3
GB = 10 ** 9


@dataclass
class HostMemoryBreakdown:
    """Named memory components on one node, in bytes."""

    capacity: int
    components: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int) -> None:
        """Account a named memory component."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        used = self.total_used + amount
        if used > self.capacity:
            raise ValueError(
                f"component {name!r} would exceed capacity "
                f"({used} > {self.capacity})")
        self.components[name] = self.components.get(name, 0) + amount

    @property
    def total_used(self) -> int:
        return sum(self.components.values())

    @property
    def idle(self) -> int:
        return self.capacity - self.total_used

    @property
    def used_fraction(self) -> float:
        return self.total_used / self.capacity

    def shares_of_used(self) -> dict[str, float]:
        """Each component's share of used memory."""
        used = self.total_used
        if used == 0:
            return {}
        return {name: amount / used
                for name, amount in self.components.items()}

    def checkpoint_buffers_that_fit(self, checkpoint_bytes: int) -> int:
        """How many in-memory checkpoint copies the idle memory holds."""
        if checkpoint_bytes <= 0:
            raise ValueError("checkpoint_bytes must be positive")
        return self.idle // checkpoint_bytes


def pretraining_host_memory(capacity_bytes: int = 1024 * GIB,
                            model_state_bytes_per_node: int | None = None,
                            ) -> HostMemoryBreakdown:
    """The Fig. 18 breakdown, optionally with an async-checkpoint buffer.

    Component sizes follow Appendix A.2's measured numbers; the training
    processes (dataloaders, CUDA contexts, framework) make up the balance
    of the observed 123 GB.
    """
    breakdown = HostMemoryBreakdown(capacity=capacity_bytes)
    tensorboard = int(6.5 * GB)
    fs_client = int(45.3 * GB)
    system = int(0.6 * GB)
    training = int(123 * GB) - tensorboard - fs_client - system
    breakdown.add("training_processes", training)
    breakdown.add("tensorboard", tensorboard)
    breakdown.add("filesystem_client", fs_client)
    breakdown.add("system_daemons", system)
    if model_state_bytes_per_node is not None:
        breakdown.add("async_checkpoint_buffer",
                      model_state_bytes_per_node)
    return breakdown
