"""DCGM-style GPU metric sampling (Fig. 7a/7b GPU side, Fig. 2b).

Samples instantaneous GPU states across the cluster the way DCGM polling
does: at a random instant, a GPU is either idle (unallocated — roughly the
cluster's unreserved/spare capacity) or running some job; busy GPUs show
metrics characteristic of the job's workload type.

Calibration anchors from the paper:

* median SM activity ≈ 40% in both clusters, about 2x PAI's 20% (Fig. 7a);
* Kalos: 50% of GPUs consume > 75% of GPU memory (60 GB) (Fig. 7b);
* GPU *utilization* (kernel-active fraction) is polarized with medians
  97%/99% (Fig. 2b) — much higher than SM activity;
* ~30% of GPUs idle at any instant (Fig. 8a's 60 W mass).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import NULL_TRACER, TracerLike
from repro.scheduler.job import JobType
from repro.sim.fastpath import fast_path_enabled
from repro.workload.trace import Trace


@dataclass(frozen=True)
class GpuSample:
    """One DCGM poll of one GPU."""

    gpu_utilization: float   # kernel-active fraction (nvidia-smi style)
    sm_activity: float       # PROF_SM_ACTIVE
    tc_activity: float       # PROF_PIPE_TENSOR_ACTIVE
    memory_used_fraction: float  # DEV_FB_USED / capacity
    job_type: JobType | None     # None = idle GPU


@dataclass(frozen=True)
class _TypeProfile:
    """Busy-GPU metric distributions for one workload type."""

    sm_mean: float
    sm_std: float
    tc_ratio: float          # TC activity as a fraction of SM activity
    mem_mean: float          # fraction of 80 GB
    mem_std: float


#: Pretraining saturates memory (ZeRO shards + activations near the 80 GB
#: ceiling) with SM activity averaging ~45% (TP comm, bubbles); evaluation
#: inference is memory-lighter and burstier; debugging is light.
_PROFILES: dict[JobType, _TypeProfile] = {
    JobType.PRETRAIN: _TypeProfile(0.46, 0.12, 0.75, 0.80, 0.10),
    JobType.SFT: _TypeProfile(0.42, 0.12, 0.70, 0.70, 0.12),
    JobType.MLLM: _TypeProfile(0.40, 0.14, 0.65, 0.65, 0.15),
    JobType.EVALUATION: _TypeProfile(0.35, 0.18, 0.55, 0.40, 0.15),
    JobType.DEBUG: _TypeProfile(0.25, 0.15, 0.40, 0.30, 0.18),
    JobType.OTHER: _TypeProfile(0.30, 0.15, 0.45, 0.35, 0.18),
}


class DcgmSampler:
    """Draws instantaneous GPU samples consistent with a trace.

    A sampled busy GPU belongs to workload type T with probability equal to
    T's share of GPU time (a random GPU at a random instant is doing
    whatever dominates GPU time — pretraining, mostly).
    """

    def __init__(self, trace: Trace, idle_fraction: float = 0.30,
                 seed: int = 0,
                 tracer: TracerLike | None = None) -> None:
        if not 0.0 <= idle_fraction < 1.0:
            raise ValueError("idle_fraction must be in [0, 1)")
        self.trace = trace
        self.idle_fraction = idle_fraction
        # tracer=None → NULL_TRACER seam: instrumentation stays off the
        # RNG path, so traced and untraced samplers draw identically.
        self.tracer = tracer or NULL_TRACER
        self.rng = np.random.default_rng(seed)
        shares = trace.gpu_time_share_by_type()
        self._types = list(shares.keys())
        self._weights = np.array([shares[t] for t in self._types])
        if self._weights.sum() <= 0:
            raise ValueError("trace has no GPU time")
        self._weights = self._weights / self._weights.sum()
        self._jobs_by_type = {
            t: [job for job in trace.gpu_jobs() if job.job_type is t]
            for t in self._types}
        self._util_by_type = {
            t: np.array([job.gpu_utilization for job in jobs])
            for t, jobs in self._jobs_by_type.items()}

    def sample(self) -> GpuSample:
        """One DCGM poll of a random GPU."""
        if self.rng.uniform() < self.idle_fraction:
            return GpuSample(0.0, 0.0, 0.0,
                             float(self.rng.uniform(0.0, 0.02)), None)
        index = int(self.rng.choice(len(self._types), p=self._weights))
        job_type = self._types[index]
        profile = _PROFILES[job_type]
        jobs = self._jobs_by_type[job_type]
        job = jobs[int(self.rng.integers(len(jobs)))]
        sm = float(np.clip(
            self.rng.normal(profile.sm_mean, profile.sm_std), 0.02, 1.0))
        tc = float(np.clip(
            sm * profile.tc_ratio * self.rng.uniform(0.85, 1.1), 0.0, 1.0))
        mem = float(np.clip(
            self.rng.normal(profile.mem_mean, profile.mem_std), 0.02, 0.98))
        return GpuSample(
            gpu_utilization=job.gpu_utilization,
            sm_activity=sm,
            tc_activity=tc,
            memory_used_fraction=mem,
            job_type=job_type,
        )

    def sample_many(self, n: int) -> list[GpuSample]:
        """``n`` independent polls."""
        if n <= 0:
            raise ValueError("n must be positive")
        samples = [self.sample() for _ in range(n)]
        self.tracer.count("monitor.dcgm.samples", float(n))
        return samples

    # -- convenience vectors ------------------------------------------------

    def metric_arrays(self, n: int) -> dict[str, np.ndarray]:
        """Arrays over busy *and* idle samples for CDF analysis.

        Fast path: all ``n`` polls are drawn as vectorized batches (one
        array op per distribution per workload type) instead of ``n``
        sequential :meth:`sample` calls.  The draws consume the RNG
        stream in a different order, so individual values differ from
        the sequential path — but each metric follows the *same*
        distribution, which is all the CDF figures and the calibration
        tests assert (statistical equivalence, pinned by
        ``tests/test_monitor.py``).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        self.tracer.count("monitor.dcgm.metric_arrays", 1.0)
        if not fast_path_enabled():
            samples = self.sample_many(n)
            return {
                "gpu_utilization": np.array([s.gpu_utilization
                                             for s in samples]),
                "sm_activity": np.array([s.sm_activity for s in samples]),
                "tc_activity": np.array([s.tc_activity for s in samples]),
                "memory_fraction": np.array([s.memory_used_fraction
                                             for s in samples]),
            }
        rng = self.rng
        idle = rng.uniform(size=n) < self.idle_fraction
        n_idle = int(idle.sum())
        n_busy = n - n_idle
        util = np.zeros(n)
        sm = np.zeros(n)
        tc = np.zeros(n)
        mem = np.empty(n)
        mem[idle] = rng.uniform(0.0, 0.02, size=n_idle)
        busy = np.flatnonzero(~idle)
        type_index = rng.choice(len(self._types), size=n_busy,
                                p=self._weights)
        for position, job_type in enumerate(self._types):
            rows = busy[type_index == position]
            count = rows.size
            if count == 0:
                continue
            profile = _PROFILES[job_type]
            utils = self._util_by_type[job_type]
            util[rows] = utils[rng.integers(utils.size, size=count)]
            sm_draw = np.clip(
                rng.normal(profile.sm_mean, profile.sm_std, size=count),
                0.02, 1.0)
            sm[rows] = sm_draw
            tc[rows] = np.clip(
                sm_draw * profile.tc_ratio
                * rng.uniform(0.85, 1.1, size=count), 0.0, 1.0)
            mem[rows] = np.clip(
                rng.normal(profile.mem_mean, profile.mem_std,
                           size=count), 0.02, 0.98)
        return {
            "gpu_utilization": util,
            "sm_activity": sm,
            "tc_activity": tc,
            "memory_fraction": mem,
        }
