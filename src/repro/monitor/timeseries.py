"""Metric time series: the Prometheus database behind §2.3.

``MetricStore`` is a small append-only time-series store with fixed-
interval resampling (the paper samples at 15 s).
``record_cluster_utilization`` derives the cluster-allocation series
from a scheduler replay — occupancy over time, hour-of-day (diurnal)
profiles, and peak/mean statistics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.scheduler.simulator import SchedulerSimulator
from repro.sim.fastpath import fast_path_enabled

SAMPLE_INTERVAL = 15.0  # §2.3: 15-second sampling


class MetricStore:
    """Append-only named series with step-function resampling."""

    def __init__(self) -> None:
        self._series: dict[str, list[tuple[float, float]]] = defaultdict(
            list)

    def append(self, name: str, timestamp: float, value: float) -> None:
        """Add one (timestamp, value) point to a series."""
        series = self._series[name]
        if series and timestamp < series[-1][0]:
            raise ValueError(
                f"timestamps must be non-decreasing for {name!r}")
        series.append((timestamp, value))

    def names(self) -> list[str]:
        """All stored series names."""
        return sorted(self._series)

    def raw(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """The unsampled (times, values) arrays of a series."""
        if name not in self._series:
            raise KeyError(name)
        points = self._series[name]
        times = np.array([t for t, _ in points])
        values = np.array([v for _, v in points])
        return times, values

    def resample(self, name: str,
                 interval: float = SAMPLE_INTERVAL,
                 start: float | None = None,
                 end: float | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Sample-and-hold resampling onto a regular grid."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        times, values = self.raw(name)
        if times.size == 0:
            return np.empty(0), np.empty(0)
        start = times[0] if start is None else start
        end = times[-1] if end is None else end
        if end < start:
            raise ValueError("end must be >= start")
        grid = np.arange(start, end + interval / 2, interval)
        indices = np.searchsorted(times, grid, side="right") - 1
        indices = np.clip(indices, 0, times.size - 1)
        return grid, values[indices]


@dataclass
class UtilizationSeries:
    """Cluster GPU-allocation fraction over time."""

    times: np.ndarray
    allocation: np.ndarray
    total_gpus: int

    @property
    def mean(self) -> float:
        return float(self.allocation.mean()) if self.allocation.size \
            else 0.0

    @property
    def peak(self) -> float:
        return float(self.allocation.max()) if self.allocation.size \
            else 0.0

    def diurnal_profile(self) -> np.ndarray:
        """Mean allocation per hour of the simulated day (24 values)."""
        if self.times.size == 0:
            return np.zeros(24)
        hours = ((self.times % 86400.0) / 3600.0).astype(int)
        if fast_path_enabled():
            counts = np.bincount(hours, minlength=24)[:24]
            sums = np.bincount(hours, weights=self.allocation,
                               minlength=24)[:24]
            return np.divide(sums, counts, out=np.zeros(24),
                             where=counts > 0)
        profile = np.zeros(24)
        for hour in range(24):
            mask = hours == hour
            profile[hour] = (float(self.allocation[mask].mean())
                             if mask.any() else 0.0)
        return profile

    def busiest_hour(self) -> int:
        """Hour of day with the highest mean allocation."""
        return int(np.argmax(self.diurnal_profile()))


def record_cluster_utilization(simulator: SchedulerSimulator,
                               interval: float = SAMPLE_INTERVAL * 20
                               ) -> UtilizationSeries:
    """Build the allocation series from a completed scheduler replay.

    The simulator's occupancy log is a step function of GPUs in use;
    this resamples it onto a regular grid (a coarser default interval
    keeps week-long replays small).

    Fast path: the occupancy log goes straight into numpy arrays and
    through the same resampling arithmetic as
    :meth:`MetricStore.resample`, skipping the per-point python store —
    a 1M-job replay logs millions of occupancy points.  The monotonic
    skip is replicated exactly: a point survives iff its timestamp is
    >= the running maximum of all earlier timestamps (the first
    occurrence of each new maximum is always kept, so the last kept
    timestamp *is* that running maximum).
    """
    total = simulator.config.total_gpus
    if not simulator.occupancy:
        return UtilizationSeries(np.empty(0), np.empty(0), total)
    if fast_path_enabled():
        if interval <= 0:
            raise ValueError("interval must be positive")
        points = np.asarray(simulator.occupancy, dtype=float)
        times = points[:, 0]
        floor = np.maximum.accumulate(np.concatenate(([0.0], times[:-1])))
        keep = times >= floor
        times = times[keep]
        values = points[:, 1][keep]
        if times.size == 0:
            return UtilizationSeries(np.empty(0), np.empty(0), total)
        grid = np.arange(times[0], times[-1] + interval / 2, interval)
        indices = np.searchsorted(times, grid, side="right") - 1
        indices = np.clip(indices, 0, times.size - 1)
        return UtilizationSeries(times=grid,
                                 allocation=values[indices] / total,
                                 total_gpus=total)
    store = MetricStore()
    last = 0.0
    for timestamp, gpus in simulator.occupancy:
        if timestamp < last:
            continue  # defensive: occupancy is appended in time order
        store.append("gpus_in_use", timestamp, gpus)
        last = timestamp
    times, values = store.resample("gpus_in_use", interval=interval)
    return UtilizationSeries(times=times, allocation=values / total,
                             total_gpus=total)
