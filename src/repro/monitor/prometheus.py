"""Prometheus-style host metrics: CPU, host memory, IB bandwidth (Fig. 7).

Anchors from §3.3:

* CPU utilization low — 16 CPUs per GPU leave most threads idle (Fig. 7c);
* host memory below 50% of capacity (Fig. 7b), Kalos doubly so (2 TB);
* IB NICs idle > 60% of the time; active bandwidth rarely exceeds 25% of
  line rate, and send/receive are symmetric (Fig. 7d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HostSample:
    """One 15-second poll of one node."""

    cpu_utilization: float        # fraction of 128 threads busy
    host_memory_fraction: float   # used / capacity
    ib_send_fraction: float       # of NIC line rate
    ib_recv_fraction: float


class PrometheusSampler:
    """Samples host-side metrics consistent with LLM workloads."""

    def __init__(self, host_memory_gb: float = 1024.0,
                 idle_nic_fraction: float = 0.62,
                 seed: int = 0) -> None:
        if host_memory_gb <= 0:
            raise ValueError("host_memory_gb must be positive")
        self.host_memory_gb = host_memory_gb
        self.idle_nic_fraction = idle_nic_fraction
        self.rng = np.random.default_rng(seed)

    def sample(self) -> HostSample:
        """One 15-second poll of a node."""
        rng = self.rng
        # Dataloader workers + framework threads occupy a small slice of
        # the 128 threads; occasional preprocessing bursts push higher.
        if rng.uniform() < 0.15:
            cpu = float(rng.uniform(0.25, 0.65))
        else:
            cpu = float(rng.beta(2.0, 18.0))
        # Typical pretraining node: ~120-250 GB active of 1-2 TB
        # (Appendix A.2), fairly stable.
        used_gb = float(rng.lognormal(np.log(140.0), 0.45))
        mem = min(used_gb / self.host_memory_gb, 0.95)
        if rng.uniform() < self.idle_nic_fraction:
            bandwidth = float(rng.uniform(0.0, 0.005))
        else:
            # Bursty collectives: mostly light, rarely above 25% line rate.
            bandwidth = float(np.clip(rng.exponential(0.07), 0.0, 0.6))
        # LLM collectives are symmetric (all-reduce/all-gather), so send
        # and receive overlap almost exactly.
        wiggle = 1.0 + float(rng.normal(0.0, 0.01))
        return HostSample(
            cpu_utilization=cpu,
            host_memory_fraction=mem,
            ib_send_fraction=bandwidth,
            ib_recv_fraction=float(np.clip(bandwidth * wiggle, 0.0, 1.0)),
        )

    def sample_many(self, n: int) -> list[HostSample]:
        """``n`` independent polls."""
        if n <= 0:
            raise ValueError("n must be positive")
        return [self.sample() for _ in range(n)]

    def metric_arrays(self, n: int) -> dict[str, np.ndarray]:
        """Sampled metrics as named arrays."""
        samples = self.sample_many(n)
        return {
            "cpu_utilization": np.array([s.cpu_utilization
                                         for s in samples]),
            "host_memory_fraction": np.array([s.host_memory_fraction
                                              for s in samples]),
            "ib_send_fraction": np.array([s.ib_send_fraction
                                          for s in samples]),
            "ib_recv_fraction": np.array([s.ib_recv_fraction
                                          for s in samples]),
        }
