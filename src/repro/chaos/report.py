"""Chaos-run summaries: MTTF / MTTR / wasted GPU-time / recovery rate.

The numbers mirror what §6.1.2 reports for the production system — how
fast failures are detected and recovered, how much GPU time they waste,
and what fraction of incidents resolve without a human — so a chaos run
can be compared side by side with the paper's recovery claims.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.analysis.report import render_key_values
from repro.failures.taxonomy import (NETWORK_FAULT_KINDS,
                                     POD_FAULT_KINDS,
                                     PARTITION_FAULT_KINDS,
                                     POWER_FAULT_KINDS,
                                     STORAGE_FAULT_KINDS,
                                     STRAGGLER_FAULT_KINDS,
                                     FailureCategory)
from repro.scheduler.job import FinalStatus


@dataclass
class ChaosSummary:
    """Headline numbers of one chaos run (all derived, no randomness)."""

    scenario: str
    seed: int
    duration_hours: float
    # -- faults --
    faults_injected: int
    faults_absorbed: int
    faults_by_kind: dict[str, int] = field(default_factory=dict)
    faults_by_category: dict[str, int] = field(default_factory=dict)
    # -- recovery --
    recovery_plans: int = 0
    restarts: int = 0
    recovery_success_rate: float = 0.0
    automation_rate: float = 0.0
    mttf_hours: float = 0.0
    mttr_minutes: float = 0.0
    # -- pretraining --
    pretrain_iterations: int = 0
    pretrain_lost_iterations: int = 0
    pretrain_restarts: int = 0
    pretrain_downtime_hours: float = 0.0
    pretrain_goodput: float = 0.0
    # -- waste --
    wasted_gpu_hours: float = 0.0
    # -- scheduler pool --
    jobs_started: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_preempted: int = 0
    # -- fleet --
    nodes_cordoned: int = 0
    nodes_escalated: int = 0
    # -- storage & checkpointing --
    storage_faults: int = 0
    checkpoints_persisted: int = 0
    checkpoints_degraded: int = 0
    checkpoints_failed: int = 0
    ckpt_quarantined: int = 0
    restore_fallbacks: int = 0
    fallback_lost_iterations: int = 0
    restores_deferred: int = 0
    storage_stall_hours: float = 0.0
    persist_health: str = "healthy"
    # -- network fabric --
    network_faults: int = 0
    segment_convictions: int = 0
    segments_cordoned_end: int = 0
    gang_migrations: int = 0
    network_slowdown_hours: float = 0.0
    # -- failure domains (pod / partition / straggler / power) --
    pod_faults: int = 0
    partition_faults: int = 0
    straggler_faults: int = 0
    stragglers_detected: int = 0
    silent_waste_gpu_hours: float = 0.0
    power_cap_faults: int = 0
    power_capped_hours: float = 0.0
    spare_swaps: int = 0
    spares_available_end: int = 0
    #: per-fault-kind recovery stage decomposition: kind -> {count,
    #: mttd_s, mttl_s, mttr_s} (mean detection / localization /
    #: recovery stage durations in seconds)
    recovery_stages: dict[str, dict[str, float]] = field(
        default_factory=dict)
    # -- validation --
    invariant_checks: int = 0

    def to_json(self) -> str:
        """Stable JSON (sorted keys) for golden-trace comparison."""
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    def render(self) -> str:
        """Human-readable report, aligned like the paper tables."""
        sections = [
            render_key_values({
                "scenario": self.scenario,
                "seed": self.seed,
                "duration (h)": self.duration_hours,
                "faults injected": self.faults_injected,
                "faults absorbed": self.faults_absorbed,
            }, title="chaos run"),
            render_key_values({
                "recovery plans": self.recovery_plans,
                "restarts": self.restarts,
                "recovery success rate": self.recovery_success_rate,
                "automation rate": self.automation_rate,
                "MTTF (h)": self.mttf_hours,
                "MTTR (min)": self.mttr_minutes,
            }, title="recovery (compare §6.1.2)"),
            render_key_values({
                "iterations retained": self.pretrain_iterations,
                "iterations lost": self.pretrain_lost_iterations,
                "restarts": self.pretrain_restarts,
                "downtime (h)": self.pretrain_downtime_hours,
                "goodput": self.pretrain_goodput,
                "wasted GPU-hours": self.wasted_gpu_hours,
            }, title="pretraining"),
            render_key_values({
                "started": self.jobs_started,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "preempted": self.jobs_preempted,
            }, title="best-effort pool"),
            render_key_values({
                "storage faults": self.storage_faults,
                "persisted": self.checkpoints_persisted,
                "degraded": self.checkpoints_degraded,
                "failed": self.checkpoints_failed,
                "quarantined": self.ckpt_quarantined,
                "fallback restores": self.restore_fallbacks,
                "fallback lost iters": self.fallback_lost_iterations,
                "restores deferred": self.restores_deferred,
                "storage stall (h)": self.storage_stall_hours,
                "persist health": self.persist_health,
            }, title="storage & checkpointing"),
            render_key_values({
                "network faults": self.network_faults,
                "segment convictions": self.segment_convictions,
                "segments cordoned (end)": self.segments_cordoned_end,
                "gang migrations": self.gang_migrations,
                "slowdown (h)": self.network_slowdown_hours,
            }, title="network fabric"),
            render_key_values({
                "pod faults": self.pod_faults,
                "partial partitions": self.partition_faults,
                "stragglers injected": self.straggler_faults,
                "stragglers detected": self.stragglers_detected,
                "silent waste (GPU-h)": self.silent_waste_gpu_hours,
                "power caps": self.power_cap_faults,
                "power capped (h)": self.power_capped_hours,
                "spare swaps": self.spare_swaps,
                "spares available (end)": self.spares_available_end,
            }, title="failure domains"),
            render_key_values({
                "cordoned": self.nodes_cordoned,
                "escalated (faulty)": self.nodes_escalated,
                "invariant checks": self.invariant_checks,
            }, title="fleet & validation"),
        ]
        if self.recovery_stages:
            sections.append(self._render_stage_table())
        return "\n\n".join(sections)

    def _render_stage_table(self) -> str:
        """MTTD/MTTL/MTTR per fault kind, one row per kind.

        MTTD is injection → detection (zero for crash-style faults
        that announce themselves); MTTL is detection → localization
        (zero when localization runs inline with detection); MTTR is
        localization → resume.
        """
        header = (f"{'kind':<18} {'n':>3} {'MTTD (s)':>10} "
                  f"{'MTTL (s)':>10} {'MTTR (s)':>10}")
        lines = ["recovery stage decomposition (MTTD / MTTL / MTTR)",
                 "-" * len(header), header]
        for kind in sorted(self.recovery_stages):
            row = self.recovery_stages[kind]
            lines.append(f"{kind:<18} {int(row['count']):>3} "
                         f"{row['mttd_s']:>10.1f} "
                         f"{row['mttl_s']:>10.1f} "
                         f"{row['mttr_s']:>10.1f}")
        return "\n".join(lines)


def summarize(harness) -> ChaosSummary:
    """Distill a finished :class:`ChaosHarness` into a summary."""
    scenario = harness.scenario
    faults = harness.faults
    by_kind: dict[str, int] = {}
    by_category: dict[str, int] = {}
    for fault in faults:
        by_kind[fault.kind] = by_kind.get(fault.kind, 0) + 1
        if fault.category is not None:
            key = fault.category.value
            by_category[key] = by_category.get(key, 0) + 1

    recoveries = harness.recoveries
    recoverable = [r for r in recoveries
                   if r.plan is not None and (
                       r.plan.diagnosis is None
                       or r.plan.diagnosis.category
                       is not FailureCategory.SCRIPT)]
    recovered = [r for r in recoverable if r.resume_time is not None]
    mttr = (sum(r.resume_time - r.fault_time for r in recovered)
            / len(recovered) if recovered else 0.0)
    times = [fault.time for fault in faults]
    gaps = [b - a for a, b in zip(times, times[1:])]
    mttf = (sum(gaps) / len(gaps)) if gaps else scenario.duration

    pretrain = harness.pretrain
    elapsed = pretrain.done_at or harness.engine.now
    goodput = (pretrain.iteration * scenario.step_time / elapsed
               if elapsed > 0 else 0.0)
    # Slowdown is waste too: the gang held its GPUs while every step
    # ran stretched on a degraded fabric (§5.2's "slow" failure mode).
    wasted_gpu_seconds = (
        pretrain.lost_iterations * scenario.step_time
        * scenario.pretrain_gpus
        + harness.pretrain_downtime * scenario.pretrain_gpus
        + pretrain.slowdown_seconds * scenario.pretrain_gpus
        + harness.scheduler_lost_gpu_seconds)

    # recovery stage decomposition: group episodes by fault kind and
    # average each stage (injection → detection → localization → resume)
    stages: dict[str, dict[str, float]] = {}
    by_stage_kind: dict[str, list] = {}
    for recovery in recoveries:
        if recovery.kind:
            by_stage_kind.setdefault(recovery.kind, []).append(recovery)
    for kind, episodes in sorted(by_stage_kind.items()):
        detect = [r.detect_time - r.injected_time for r in episodes]
        localize = [r.localize_time - r.detect_time for r in episodes]
        resolve = [r.resume_time - r.localize_time for r in episodes
                   if r.resume_time is not None]
        stages[kind] = {
            "count": float(len(episodes)),
            "mttd_s": sum(detect) / len(detect) if detect else 0.0,
            "mttl_s": sum(localize) / len(localize) if localize else 0.0,
            "mttr_s": sum(resolve) / len(resolve) if resolve else 0.0,
        }

    spare_swaps = sum(len(plan.spare_swaps)
                      for plan in harness.controller.incidents)
    spares_end = (len(harness.spare_pool.available)
                  if harness.spare_pool is not None else 0)

    finished = harness.scheduler.finished
    return ChaosSummary(
        scenario=scenario.name,
        seed=scenario.seed,
        duration_hours=scenario.duration / 3600.0,
        faults_injected=len(faults),
        faults_absorbed=harness.absorbed_faults,
        faults_by_kind=dict(sorted(by_kind.items())),
        faults_by_category=dict(sorted(by_category.items())),
        recovery_plans=len(harness.controller.incidents),
        restarts=len(recovered),
        recovery_success_rate=(len(recovered) / len(recoverable)
                               if recoverable else 1.0),
        automation_rate=harness.controller.automation_rate(),
        mttf_hours=mttf / 3600.0,
        mttr_minutes=mttr / 60.0,
        pretrain_iterations=pretrain.iteration,
        pretrain_lost_iterations=pretrain.lost_iterations,
        pretrain_restarts=pretrain.restarts,
        pretrain_downtime_hours=harness.pretrain_downtime / 3600.0,
        pretrain_goodput=goodput,
        wasted_gpu_hours=wasted_gpu_seconds / 3600.0,
        jobs_started=len(harness.scheduler.started),
        jobs_completed=sum(1 for job in finished
                           if job.final_status
                           is FinalStatus.COMPLETED),
        jobs_failed=sum(1 for job in finished
                        if job.final_status is FinalStatus.FAILED),
        jobs_preempted=harness.scheduler.preemptions,
        nodes_cordoned=sum(1 for node in harness.nodes
                           if not node.schedulable),
        nodes_escalated=sum(1 for node in harness.nodes
                            if node.health.value == "faulty"),
        storage_faults=sum(count for kind, count in by_kind.items()
                           if kind in STORAGE_FAULT_KINDS),
        checkpoints_persisted=harness.checkpoints_persisted,
        checkpoints_degraded=harness.checkpoints_degraded,
        checkpoints_failed=harness.checkpoints_failed,
        ckpt_quarantined=len(harness.catalog.quarantined),
        restore_fallbacks=harness.restore_fallbacks,
        fallback_lost_iterations=harness.fallback_lost_iterations,
        restores_deferred=harness.restores_deferred,
        storage_stall_hours=harness.storage_stall_seconds / 3600.0,
        persist_health=harness.checkpointer.health.value,
        network_faults=sum(count for kind, count in by_kind.items()
                           if kind in NETWORK_FAULT_KINDS),
        segment_convictions=sum(
            harness.controller.segment_convictions.values()),
        segments_cordoned_end=len(harness.cordoned_segments),
        gang_migrations=harness.gang_migrations,
        network_slowdown_hours=pretrain.slowdown_seconds / 3600.0,
        pod_faults=sum(count for kind, count in by_kind.items()
                       if kind in POD_FAULT_KINDS),
        partition_faults=sum(count for kind, count in by_kind.items()
                             if kind in PARTITION_FAULT_KINDS),
        straggler_faults=sum(count for kind, count in by_kind.items()
                             if kind in STRAGGLER_FAULT_KINDS),
        stragglers_detected=harness.stragglers_detected,
        silent_waste_gpu_hours=(harness.silent_waste_gpu_seconds
                                / 3600.0),
        power_cap_faults=sum(count for kind, count in by_kind.items()
                             if kind in POWER_FAULT_KINDS),
        power_capped_hours=harness.power_capped_seconds / 3600.0,
        spare_swaps=spare_swaps,
        spares_available_end=spares_end,
        recovery_stages=stages,
        invariant_checks=harness.checker.checks_run,
    )
