"""The live fault-injection harness: sim → scheduler → recovery.

``ChaosHarness`` assembles one cluster on a single deterministic
:class:`~repro.sim.engine.Engine`:

* a pretraining gang stepping through a
  :class:`~repro.training.pretrain.PretrainProcess`, checkpointing into a
  :class:`~repro.core.recovery.CheckpointCatalog`;
* a best-effort pool replayed through
  :class:`~repro.scheduler.simulator.SchedulerSimulator`;
* the §6.1 :class:`~repro.core.recovery.RecoveryController` (diagnosis →
  two-round NCCL test → cordon → rollback → restart) reacting to every
  fault the scenario injects;
* an :class:`~repro.chaos.invariants.InvariantChecker` registered as an
  engine listener, so cross-layer invariants are validated after *every*
  simulation event.

The harness itself draws no randomness — all of it lives in
:meth:`ChaosScenario.build_faults` / ``build_background_jobs`` — so a
seeded run is byte-for-byte reproducible: same event log, same summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.invariants import InvariantChecker
from repro.chaos.report import ChaosSummary, summarize
from repro.chaos.scenario import (GPUS_PER_NODE, ChaosScenario,
                                  InjectedFault)
from repro.cluster.fattree import FatTree, FatTreeConfig
from repro.cluster.linkhealth import (LinkHealth, leaf_link, nic_link,
                                      pod_link)
from repro.cluster.machine import Node, NodeHealth, seren_node_spec
from repro.cluster.storage import (CorruptingStorage, FlakyStorage,
                                   SlowStorage, StorageError)
from repro.core.checkpoint import (CheckpointError, InMemoryStorage,
                                   RetryPolicy, SyncCheckpointer,
                                   _checkpoint_key)
from repro.core.diagnosis import DiagnosisSystem
from repro.core.recovery import (AnomalyEvent, CheckpointCatalog,
                                 CollectiveTester,
                                 FabricCollectiveTester,
                                 RecoveryController)
from repro.core.recovery.controller import HotSparePool, RecoveryPlan
from repro.core.recovery.detector import StepTimeDeviationDetector
from repro.failures.logs import LogGenerator
from repro.failures.taxonomy import (FABRIC_FAULT_KINDS,
                                     POWER_FAULT_KINDS,
                                     STORAGE_FAULT_KINDS,
                                     STRAGGLER_FAULT_KINDS,
                                     FailureCategory)
from repro.obs.span import Span
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.scheduler.job import FinalStatus, Job
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator
from repro.sim.engine import Engine, SimulationError

PRETRAIN_JOB_ID = "pretrain-main"

#: fabric fault kinds that degrade bandwidth without severing it; the
#: gang keeps stepping (stretched) until monitoring detects and reacts
_SOFT_FABRIC_KINDS = ("link_degraded", "pod_link_degraded",
                      "partial_partition")


class _EngineClock:
    """Clock view of the engine for the checkpoint pipeline.

    ``now`` is the engine time plus a virtual *stall offset*; ``sleep``
    (retry backoff, injected slowdown delays) only grows the offset, so
    fault windows and retry deadlines see time advance while the
    single-threaded simulation never blocks.  The harness resets the
    offset around each persist/restore and charges it to the run's
    storage-stall accounting.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.offset = 0.0

    def now(self) -> float:
        return self.engine.now + self.offset

    def sleep(self, seconds: float) -> None:
        self.offset += seconds


@dataclass
class ChaosResult:
    """Everything one chaos run produced."""

    scenario: ChaosScenario
    event_log: list[tuple[float, str, str]]
    summary: ChaosSummary
    checker: InvariantChecker

    def event_log_lines(self) -> list[str]:
        """The event log as stable, diff-friendly text lines."""
        return [f"{time:12.3f}  {kind:<18} {detail}"
                for time, kind, detail in self.event_log]

    def event_log_text(self) -> str:
        return "\n".join(self.event_log_lines())


@dataclass
class _Recovery:
    """Bookkeeping for one fault → recovery episode."""

    fault_time: float
    resume_time: float | None = None
    plan: RecoveryPlan | None = None
    #: True while the restore is parked waiting out a storage outage
    deferred: bool = False
    #: open observability span covering fault → resume
    span: Span | None = None
    #: fault kind driving the episode (MTTD/MTTL/MTTR grouping key)
    kind: str = ""
    #: stage timestamps: injection → detection → localization → resume
    injected_time: float = 0.0
    detect_time: float = 0.0
    localize_time: float = 0.0


@dataclass
class _StragglerState:
    """Live state of one injected straggler / silent degrader.

    There is deliberately no failure log line attached: nothing
    crashes — the node just gets slower every ramp interval until
    step-time deviation detection (or nobody) notices.
    """

    index: int
    fault: InjectedFault
    node: str
    #: per-ramp multiplicative step-contribution decay
    decay: float
    #: decay saturates here (silent degraders stay near 1.0)
    floor: float
    factor: float = 1.0
    detected_at: float | None = None
    #: sim time waste was last accrued up to
    last_accrual: float = 0.0
    #: GPU-seconds of capacity quietly lost while undetected
    waste_gpu_seconds: float = 0.0


class ChaosHarness:
    """Wires one :class:`ChaosScenario` into a running simulation."""

    def __init__(self, scenario: ChaosScenario,
                 tracer: TracerLike | None = None) -> None:
        self.scenario = scenario
        self.engine = Engine()
        # the tracer observes through the listener seam; with the
        # default NULL_TRACER every instrumentation point is a no-op
        # and the run's artifacts are byte-identical to an untraced one
        self.tracer = tracer or NULL_TRACER
        self.tracer.attach(self.engine)
        self.nodes = [Node(name=f"node-{i:03d}", spec=seren_node_spec())
                      for i in range(scenario.n_nodes)]
        self._by_name = {node.name: node for node in self.nodes}
        # fixed roles: gang | scheduler pool | hot spares
        gang = scenario.gang_nodes
        pool = scenario.pool_nodes
        self.pool_node_names = [node.name
                                for node in self.nodes[gang:gang + pool]]
        self.spare_node_names = [node.name
                                 for node in self.nodes[gang + pool:]]
        #: live gang placements: node name -> job id
        self.placements: dict[str, str] = {
            node.name: PRETRAIN_JOB_ID for node in self.nodes[:gang]}

        self.scheduler = SchedulerSimulator(
            SchedulerConfig(total_gpus=scenario.scheduler_gpus,
                            reserved_fraction=0.5),
            engine=self.engine, tracer=self.tracer)
        self.scheduler.hooks.append(self._on_scheduler_event)

        self.faults = scenario.build_faults()
        storage_faults = [fault for fault in self.faults
                          if fault.kind in STORAGE_FAULT_KINDS]
        fabric_faults = [fault for fault in self.faults
                         if fault.kind in FABRIC_FAULT_KINDS]
        straggler_faults = [fault for fault in self.faults
                            if fault.kind in STRAGGLER_FAULT_KINDS]
        power_faults = [fault for fault in self.faults
                        if fault.kind in POWER_FAULT_KINDS]

        # -- fabric health overlay (armed up front from the schedule,
        # like the storage fault windows; strict no-op when empty) --
        self.fabric_config = FatTreeConfig(
            nodes=scenario.n_nodes,
            nodes_per_leaf=scenario.nodes_per_leaf,
            leaves_per_pod=scenario.leaves_per_pod)
        self.link_health = LinkHealth()
        self.node_index = {node.name: index
                           for index, node in enumerate(self.nodes)}
        self._leaf_by_name = {
            node.name: index // scenario.nodes_per_leaf
            for index, node in enumerate(self.nodes)}
        #: leaf -> pod map, armed only when the fabric actually spans
        #: pods; single-pod fabrics pass None so localization keeps the
        #: exact legacy probe order (byte-identical goldens)
        self._pod_of_leaf = (
            {leaf: leaf // scenario.leaves_per_pod
             for leaf in range(self.fabric_config.leaf_count)}
            if self.fabric_config.pod_count > 1 else None)
        for fault in fabric_faults:
            end = fault.time + fault.duration
            if fault.link is None:
                raise ValueError(
                    f"network fault {fault.kind} has no link target")
            if fault.kind == "link_degraded":
                self.link_health.link_degraded(
                    fault.link, fault.time, end,
                    scenario.link_degraded_factor)
            elif fault.kind == "pod_link_degraded":
                self.link_health.link_degraded(
                    fault.link, fault.time, end,
                    scenario.pod_link_degraded_factor)
            elif fault.kind == "partial_partition":
                # asymmetric degradation: each NIC in the partition set
                # gets its own factor, some above the health threshold
                # (those pairs still pass probes) and some below
                for link, factor in zip(fault.links, fault.link_factors):
                    self.link_health.link_degraded(
                        link, fault.time, end, factor)
            elif fault.kind == "switch_down":
                leaf = int(fault.link.split(":", 1)[1])
                self.link_health.switch_down(self.fabric_config, leaf,
                                             fault.time, end)
            else:  # link_down / pod_link_down
                self.link_health.link_down(fault.link, fault.time, end)
        self.fabric = FatTree(self.fabric_config,
                              health=self.link_health)
        #: gate for the topology-aware placement path: scenarios
        #: without fabric faults take the exact legacy name-order
        #: path, keeping their goldens byte-identical
        self._network_aware = bool(fabric_faults)
        #: gate for the step-factor recomposition path — fabric,
        #: straggler, and power faults all stretch the gang's steps
        self._factor_aware = (self._network_aware
                              or bool(straggler_faults)
                              or bool(power_faults))
        #: fabric segments currently cordoned by localization
        self.cordoned_segments: set[str] = set()
        self.gang_migrations = 0

        # -- hot-spare pool: the scenario's tail nodes become warm
        # standbys reserved for preemptive migration --
        self.spare_pool: HotSparePool | None = None
        if scenario.hot_spares > 0:
            self.spare_pool = HotSparePool(
                self.spare_node_names[-scenario.hot_spares:],
                swap_delay=scenario.spare_swap_delay,
                reschedule_delay=scenario.restart_delay,
                gang_gpus=scenario.pretrain_gpus)

        # -- straggler / power-cap state --
        self._straggler_states: list[_StragglerState] = []
        self._has_straggler_faults = bool(straggler_faults)
        self._deviation = StepTimeDeviationDetector(
            threshold=scenario.straggler_detect_threshold,
            patience=scenario.straggler_detect_patience)
        self._probe_baseline: tuple[float, int] | None = None
        self.stragglers_detected = 0
        self.silent_waste_gpu_seconds = 0.0
        #: open power-cap windows: fault index -> (factor, opened_at)
        self._active_power_caps: dict[int, tuple[float, float]] = {}
        self._power_factor = 1.0
        self.power_capped_seconds = 0.0

        def _windows(kind: str) -> list[tuple[float, float]]:
            return [(fault.time, fault.time + fault.duration)
                    for fault in storage_faults if fault.kind == kind]

        self.outage_windows = _windows("storage_outage")
        # checkpoints traverse the full fault stack: corruption closest
        # to the store (it poisons what lands on disk), slowdown and
        # outage layered above, all on the engine-backed clock
        self._clock = _EngineClock(self.engine)
        self._corrupting = CorruptingStorage(
            InMemoryStorage(), windows=_windows("ckpt_corruption") or (),
            clock=self._clock)
        faulty = SlowStorage(
            self._corrupting, delay=scenario.storage_slowdown_delay,
            windows=_windows("storage_slowdown") or (), clock=self._clock)
        faulty = FlakyStorage(faulty, windows=self.outage_windows or (),
                              clock=self._clock)
        self.storage = faulty
        self.checkpointer = SyncCheckpointer(
            faulty,
            retry=RetryPolicy(max_attempts=5, base_delay=5.0,
                              backoff=2.0, max_delay=120.0,
                              deadline=scenario.storage_persist_deadline,
                              jitter=0.0),
            clock=self._clock, tracer=self.tracer)

        self.catalog = CheckpointCatalog()
        self.controller = RecoveryController(
            DiagnosisSystem(tracer=self.tracer), self.catalog,
            self.nodes, leaf_of=self._leaf_by_name,
            pod_of_leaf=self._pod_of_leaf, spare_pool=self.spare_pool)
        self.pretrain = PretrainProcessFactory.build(
            self.engine, scenario, self._on_checkpoint, self._on_done,
            tracer=self.tracer)

        self.checker = InvariantChecker(
            scheduler=self.scheduler, nodes=self._by_name,
            placements=self.placements, pretrain=self.pretrain)
        self.checker.set_storage_context(
            self.outage_windows, horizon=scenario.duration,
            wedge_slack=(scenario.storage_retry_delay
                         + scenario.restart_delay))
        self.checker.set_network_context(
            self.link_health, scenario.network_min_factor,
            self.cordoned_segments)
        if self._factor_aware:
            self.checker.set_residual_stretch(
                self._expected_residual_stretch)
        if self._has_straggler_faults:
            self.checker.set_straggler_context(
                scenario.straggler_detect_bound)
        if self.spare_pool is not None:
            self.checker.set_spare_context(self.spare_pool)
        self.engine.add_listener(self.checker.check)

        self.event_log: list[tuple[float, str, str]] = []
        self.recoveries: list[_Recovery] = []
        self.absorbed_faults = 0
        self.resubmissions = 0
        self._pretrain_stopped_at: float | None = None
        self.pretrain_downtime = 0.0
        self.scheduler_lost_gpu_seconds = 0.0
        # -- storage & checkpoint-path accounting --
        self.checkpoints_persisted = 0
        self.checkpoints_degraded = 0
        self.checkpoints_failed = 0
        self.restore_fallbacks = 0
        self.fallback_lost_iterations = 0
        self.restores_deferred = 0
        self.storage_stall_seconds = 0.0
        self._quarantine_seen = 0
        # -- incremental-run lifecycle (start / advance / finish) --
        self._started = False
        self._detached = False
        self._finished = False

    # -- logging ------------------------------------------------------------

    def _log(self, kind: str, detail: str) -> None:
        self.event_log.append((self.engine.now, kind, detail))

    # -- component callbacks ------------------------------------------------

    def _collect_stall(self) -> float:
        """Charge the clock's virtual stall to the run and reset it."""
        stall = self._clock.offset
        self._clock.offset = 0.0
        self.storage_stall_seconds += stall
        return stall

    def _on_checkpoint(self, step: int) -> None:
        self._clock.offset = 0.0
        state = {"iteration": np.array([step], dtype=np.int64)}
        try:
            self.checkpointer.save(step, state)
        except CheckpointError:
            self._collect_stall()
            self.checkpoints_failed += 1
            self.checker.record_persist(self.engine.now, step, False)
            self.controller.record_storage_alert(
                step, f"persist failed "
                      f"(health={self.checkpointer.health.value})")
            self._log("checkpoint_failed",
                      f"step={step} "
                      f"health={self.checkpointer.health.value}")
            return
        stall = self._collect_stall()
        self.checkpoints_persisted += 1
        self.catalog.add(step)
        self.checker.record_persist(self.engine.now, step, True)
        if _checkpoint_key(step) in self._corrupting.corrupted_keys:
            # silent bit rot: the write "succeeded" but the generation
            # is poisoned; only a future restore's checksum can tell
            self.checker.record_corrupt_write(step)
        result = self.checkpointer.last_result
        attempts = result.attempts if result is not None else 1
        if attempts > 1 or stall > 0.0:
            self.checkpoints_degraded += 1
            self.controller.record_storage_alert(
                step, f"persist degraded (attempts={attempts}, "
                      f"stall={stall:.1f}s)")
            self._log("checkpoint_degraded",
                      f"step={step} attempts={attempts} "
                      f"stall={stall:.1f}")
        else:
            self._log("checkpoint", f"step={step}")

    def _on_done(self, step: int) -> None:
        self._log("pretrain_done", f"step={step}")

    def _on_scheduler_event(self, kind: str, job: Job) -> None:
        self._log(f"job_{kind}",
                  f"{job.job_id} type={job.job_type.value} "
                  f"gpus={job.gpu_demand}")

    # -- run ----------------------------------------------------------------

    def run(self) -> ChaosResult:
        """Execute the scenario; returns the log, summary, and checker.

        Equivalent to ``start(); advance(duration); finish()`` — the
        incremental lifecycle used by ``repro.service`` — with the
        detach guaranteed even when the run raises mid-horizon.
        """
        self.start()
        try:
            self.advance(self.scenario.duration)
        finally:
            self._detach()
        return self.finish()

    def start(self) -> None:
        """Arm the scenario on the engine without running it.

        Schedules the pretraining gang, background jobs, the fault
        schedule, and the straggler probe; after this the engine can be
        driven in incremental horizons via :meth:`advance`.
        """
        if self._started:
            raise SimulationError("harness already started")
        self._started = True
        scenario = self.scenario
        self._log("scenario_start",
                  f"{scenario.name} seed={scenario.seed} "
                  f"nodes={scenario.n_nodes} faults={len(self.faults)}")
        self.pretrain.start()
        self._log("pretrain_start",
                  f"gpus={scenario.pretrain_gpus} "
                  f"nodes={','.join(sorted(self.placements))}")
        for job in scenario.build_background_jobs():
            self.scheduler.submit(job)
        for index, fault in enumerate(self.faults):
            self.engine.call_at(fault.time,
                                lambda i=index, f=fault:
                                self._inject(i, f))
        if self._has_straggler_faults:
            # periodic step-time probe: stragglers emit no failure log
            # line, so detection must come from timeseries deviation
            self.engine.call_after(scenario.straggler_probe_interval,
                                   self._straggler_probe)

    def advance(self, until: float) -> float:
        """Run the armed scenario up to simulated time ``until``.

        Horizons are cumulative and monotone; partitioning a run into
        any sequence of ``advance`` calls is event-for-event identical
        to one batch run to the final horizon (the engine's ``until``
        never consumes sequence numbers).  Returns the engine clock.
        """
        if not self._started:
            raise SimulationError("advance() before start()")
        if self._finished:
            raise SimulationError("advance() after finish()")
        if until < self.engine.now:
            raise SimulationError(
                f"cannot advance backwards: {until} < {self.engine.now}")
        return self.engine.run(until=until)

    def _detach(self) -> None:
        """Unhook the invariant checker and tracer (idempotent).

        A reused engine (or a second harness in one process) must never
        fire a stale checker, and the tracer's event-count listener
        goes with it.
        """
        if self._detached:
            return
        self._detached = True
        self.engine.remove_listener(self.checker.check)
        self.tracer.detach(self.engine)

    def finish(self) -> ChaosResult:
        """Tear down and summarize an armed run (listeners detached)."""
        if not self._started:
            raise SimulationError("finish() before start()")
        if self._finished:
            raise SimulationError("finish() called twice")
        self._finished = True
        self._detach()
        for recovery in self.recoveries:
            # a recovery still open at the horizon (stalled gang,
            # deferred restore) shows up in the trace as unresolved
            if recovery.span is not None and recovery.span.end is None:
                self.tracer.end(recovery.span, outcome="unresolved")
        if self._pretrain_stopped_at is not None:
            self.pretrain_downtime += (self.engine.now
                                       - self._pretrain_stopped_at)
            self._pretrain_stopped_at = None
        if self.pretrain.running:
            self.pretrain.interrupt("scenario deadline")
        self._finalize_failure_domains()
        self.checker.final_check(
            fallback_lost_iterations=self.fallback_lost_iterations)
        self._log("scenario_end",
                  f"iteration={self.pretrain.iteration} "
                  f"restarts={self.pretrain.restarts}")
        summary = summarize(self)
        return ChaosResult(scenario=self.scenario,
                           event_log=self.event_log,
                           summary=summary, checker=self.checker)

    # -- fault injection ----------------------------------------------------

    def _inject(self, index: int, fault: InjectedFault) -> None:
        self._log("fault_injected",
                  f"#{index} kind={fault.kind} "
                  f"reason={fault.reason or '-'} target={fault.target}")
        self.tracer.instant(f"fault:{fault.kind}", "chaos",
                            index=index, target=fault.target,
                            reason=fault.reason)
        self.tracer.count("chaos.faults_injected")
        if fault.kind == "failure":
            if fault.target == "pretrain":
                self._fail_pretrain(index, fault)
            else:
                self._fail_scheduler_job(index, fault)
        elif fault.kind in ("loss_spike", "hang"):
            self._anomaly(index, fault)
        elif fault.kind in STORAGE_FAULT_KINDS:
            self._storage_fault(index, fault)
        elif fault.kind in FABRIC_FAULT_KINDS:
            self._network_fault(index, fault)
        elif fault.kind in STRAGGLER_FAULT_KINDS:
            self._straggler_fault(index, fault)
        elif fault.kind in POWER_FAULT_KINDS:
            self._power_fault(index, fault)
        else:
            raise ValueError(f"unknown fault kind {fault.kind!r}")

    def _fail_pretrain(self, index: int, fault: InjectedFault) -> None:
        if not self.pretrain.running:
            self.absorbed_faults += 1
            self._log("fault_absorbed", f"#{index} pretrain not running")
            if fault.category is FailureCategory.INFRASTRUCTURE:
                # still diagnose-and-cordon: broken hardware does not heal
                # because the gang happened to be down
                plan = self._diagnose(fault, self._pretrain_victim(fault))
                self.checker.record_infra_plan(index, plan)
                self._apply_cordons(plan)
            return
        victim = self._pretrain_victim(fault)
        step_at_failure = self.pretrain.interrupt(fault.reason or "")
        self._pretrain_stopped_at = self.engine.now
        self._log("pretrain_interrupt",
                  f"step={step_at_failure} reason={fault.reason} "
                  f"victim={victim}")
        plan = self._diagnose(fault, victim)
        if fault.category is FailureCategory.INFRASTRUCTURE:
            self.checker.record_infra_plan(index, plan)
        self._apply_cordons(plan)
        recovery = self._track_recovery(index, fault, plan)
        if plan.restart:
            step = min(plan.restart_checkpoint_step or 0, step_at_failure)
            self._restart_pretrain(step, step_at_failure, recovery)
        else:
            reason = plan.diagnosis.reason if plan.diagnosis else "anomaly"
            self._log("pretrain_stalled", f"no restart planned ({reason})")

    def _fail_scheduler_job(self, index: int, fault: InjectedFault
                            ) -> None:
        running = self.scheduler.running_jobs()
        if not running:
            self.absorbed_faults += 1
            self._log("fault_absorbed", f"#{index} no running job")
            if fault.category is FailureCategory.INFRASTRUCTURE:
                plan = self._diagnose(fault, self._pool_victim(fault))
                self.checker.record_infra_plan(index, plan)
                self._apply_cordons(plan)
            return
        victim_job = running[fault.node_index % len(running)]
        elapsed = self.engine.now - (victim_job.start_time or 0.0)
        self.scheduler_lost_gpu_seconds += (elapsed
                                            * victim_job.gpu_demand)
        self.scheduler.fail_job(victim_job.job_id, fault.reason)
        victim_node = self._pool_victim(fault)
        plan = self._diagnose(fault, victim_node)
        if fault.category is FailureCategory.INFRASTRUCTURE:
            self.checker.record_infra_plan(index, plan)
        self._apply_cordons(plan)
        recovery = self._track_recovery(index, fault, plan)
        if plan.restart:
            self._resubmit(victim_job, recovery)
        else:
            self._log("job_not_restarted",
                      f"{victim_job.job_id} ({fault.reason}: script "
                      "errors fail identically)")

    def _anomaly(self, index: int, fault: InjectedFault) -> None:
        if not self.pretrain.running:
            self.absorbed_faults += 1
            self._log("fault_absorbed", f"#{index} pretrain not running")
            return
        step_at_failure = self.pretrain.interrupt(fault.kind)
        self._pretrain_stopped_at = self.engine.now
        self._log("pretrain_interrupt",
                  f"step={step_at_failure} reason={fault.kind}")
        event = AnomalyEvent(kind=fault.kind, step=step_at_failure,
                             detail=f"injected by chaos fault #{index}")
        tester = (CollectiveTester({self._pretrain_victim(fault)})
                  if fault.kind == "hang" else None)
        plan = self.controller.handle_anomaly(event, tester)
        self._log_plan(plan)
        self._apply_cordons(plan)
        recovery = self._track_recovery(index, fault, plan)
        if plan.restart:
            step = min(plan.restart_checkpoint_step or 0, step_at_failure)
            self._restart_pretrain(step, step_at_failure, recovery)
        else:
            # a loss spike with no checkpoint: nothing to roll back to;
            # resume in place rather than abandoning the campaign
            self._log("pretrain_resume_in_place",
                      f"step={step_at_failure} (no rollback target)")
            self._restart_pretrain(step_at_failure, step_at_failure,
                                   recovery, restore=False)

    def _storage_fault(self, index: int, fault: InjectedFault) -> None:
        """Mark a storage fault window opening (and schedule its close).

        The window itself is already armed inside the fault decorators
        (built at init from the same schedule); this only narrates it,
        so checkpoint traffic hitting the window shows up in context.
        """
        end = fault.time + fault.duration
        self._log("storage_fault_begin",
                  f"#{index} kind={fault.kind} until={end:.3f}")
        self.tracer.complete(f"window:{fault.kind}", fault.time, end,
                             "chaos.storage", index=index)
        self.engine.call_at(end, lambda: self._log(
            "storage_fault_end", f"#{index} kind={fault.kind}"))

    def _network_fault(self, index: int, fault: InjectedFault) -> None:
        """A fabric link/switch fault window opens.

        Like storage windows, the degradation itself is already armed
        inside the :class:`LinkHealth` overlay built at init; this
        reacts to it — slowing or interrupting the gang, localizing the
        sick link, and cordoning what the test convicts.
        """
        end = fault.time + fault.duration
        self._log("network_fault_begin",
                  f"#{index} kind={fault.kind} link={fault.link} "
                  f"until={end:.3f}")
        self.tracer.complete(f"window:{fault.kind}", fault.time, end,
                             "chaos.network", index=index,
                             link=fault.link)
        self.engine.call_at(end, lambda i=index, f=fault:
                            self._network_fault_end(i, f))
        if fault.kind in _SOFT_FABRIC_KINDS:
            # a slow link (or a partially-partitioned link set) does
            # not kill the job — it stretches every step until
            # monitoring notices and reacts
            self._refresh_gang_factor()
            self.engine.call_after(
                self.scenario.degraded_detect_delay,
                lambda i=index, f=fault: self._detect_degradation(i, f))
            return
        self._hard_network_fault(index, fault)

    def _hard_network_fault(self, index: int,
                            fault: InjectedFault) -> None:
        """A link or switch died outright: collectives on it fail now."""
        gang_hosts = sorted(self.placements)
        down_crossed: list[str] = []
        if len(gang_hosts) > 1:
            group = [self.node_index[name] for name in gang_hosts]
            down_crossed = self.fabric.down_links_crossed(
                group, self.engine.now)
        if down_crossed and self.pretrain.running:
            step_at_failure = self.pretrain.interrupt(fault.kind)
            self._pretrain_stopped_at = self.engine.now
            self._log("pretrain_interrupt",
                      f"step={step_at_failure} reason={fault.reason} "
                      f"links={','.join(down_crossed)}")
            plan = self._localize(fault, restart=True)
            self.checker.record_infra_plan(index, plan)
            self._apply_cordons(plan)
            self._apply_segment_cordons(plan)
            recovery = self._track_recovery(index, fault, plan)
            step = min(plan.restart_checkpoint_step or 0,
                       step_at_failure)
            self._restart_pretrain(step, step_at_failure, recovery)
            return
        # The fault missed the gang's collective path (or the gang is
        # already down): still localize and cordon, so placement routes
        # around the sick fabric — broken links do not heal because
        # nobody was using them.  No restart is planned.
        plan = self._localize(fault, restart=False)
        self._apply_cordons(plan)
        self._apply_segment_cordons(plan)
        self._refresh_gang_factor()

    def _detect_degradation(self, index: int,
                            fault: InjectedFault) -> None:
        """Monitoring noticed a slow link; migrate if the gang suffers."""
        end = fault.time + fault.duration
        if self.engine.now >= end:
            return  # the window closed before detection fired
        if not self.pretrain.running:
            return  # gang already down; recovery will re-place it
        gang_hosts = sorted(self.placements)
        if len(gang_hosts) <= 1:
            return
        group = [self.node_index[name] for name in gang_hosts]
        factor = self.fabric.group_health_factor(group, self.engine.now)
        if factor >= self.scenario.network_min_factor:
            self._log("degradation_tolerated",
                      f"#{index} gang factor {factor:.3f} at or above "
                      f"threshold {self.scenario.network_min_factor}")
            return
        # The gang is communication-bound on a sick path: pause (the
        # iteration in flight is kept — this is a migration, not a
        # failure), localize, and resume on healthy fabric.
        step = self.pretrain.interrupt(fault.kind)
        self._pretrain_stopped_at = self.engine.now
        self._log("pretrain_interrupt",
                  f"step={step} reason=degraded_link "
                  f"factor={factor:.3f}")
        plan = self._localize(fault, restart=False)
        if plan.cordoned_nodes or plan.cordoned_segments:
            self.checker.record_infra_plan(index, plan)
        self._apply_cordons(plan)
        self._apply_segment_cordons(plan)
        # detection genuinely lagged injection here: the window opened
        # at fault.time, monitoring fired degraded_detect_delay later
        recovery = self._track_recovery(index, fault, plan,
                                        injected=fault.time)
        self._restart_pretrain(step, step, recovery, restore=False)

    def _network_fault_end(self, index: int,
                           fault: InjectedFault) -> None:
        """A fault window closed: repair healed segments, restore speed."""
        self._log("network_fault_end",
                  f"#{index} kind={fault.kind} link={fault.link}")
        now = self.engine.now
        healed = [segment for segment in sorted(self.cordoned_segments)
                  if (self.link_health.factor(segment, now)
                      >= self.scenario.network_min_factor)]
        for segment in healed:
            self.cordoned_segments.discard(segment)
            self._log("segment_repaired", segment)
        self._refresh_gang_factor()

    def _localize(self, fault: InjectedFault,
                  restart: bool) -> RecoveryPlan:
        """Run topology-aware localization against the live fabric."""
        tester = self._build_fabric_tester()
        plan = self.controller.handle_network_fault(
            f"{fault.kind} on {fault.link}", tester, restart=restart)
        self._log_plan(plan)
        now = self.engine.now
        for name in sorted(plan.cordoned_nodes):
            # invariant 14: a convicted node's fabric path must really
            # be sick — partial partitions never convict a healthy side
            index = self.node_index[name]
            leaf = self._leaf_by_name[name]
            path = min(self.link_health.factor(nic_link(index), now),
                       self.link_health.factor(leaf_link(leaf), now))
            if self._pod_of_leaf is not None:
                path = min(path, self.link_health.factor(
                    pod_link(self._pod_of_leaf[leaf]), now))
            self.checker.record_node_conviction(now, name, path)
        return plan

    def _build_fabric_tester(self) -> FabricCollectiveTester:
        """Snapshot live link health into a pass/fail probe oracle."""
        now = self.engine.now
        node_factors = {
            name: self.link_health.factor(nic_link(index), now)
            for name, index in sorted(self.node_index.items())}
        segment_factors = {
            leaf_link(leaf): self.link_health.factor(
                leaf_link(leaf), now)
            for leaf in range(self.fabric_config.leaf_count)}
        if self._pod_of_leaf is not None:
            for pod in range(self.fabric_config.pod_count):
                segment_factors[pod_link(pod)] = self.link_health.factor(
                    pod_link(pod), now)
        return FabricCollectiveTester(
            self._leaf_by_name, node_factors=node_factors,
            segment_factors=segment_factors,
            min_factor=self.scenario.network_min_factor,
            pod_of_leaf=self._pod_of_leaf)

    def _apply_segment_cordons(self, plan: RecoveryPlan) -> None:
        for segment in sorted(plan.cordoned_segments):
            if segment in self.cordoned_segments:
                continue
            self.cordoned_segments.add(segment)
            self.checker.record_segment_conviction(self.engine.now,
                                                   segment)
            self.tracer.count("network.segments_cordoned")
            self._log("segment_cordon", segment)

    def _refresh_gang_factor(self) -> None:
        """Re-derive the gang's step factor from live failure domains.

        Composes fabric bandwidth, the slowest undetected straggler
        still hosting the gang, and the fleet-wide power cap.  With no
        straggler or power pressure the composition multiplies by 1.0
        exactly, so fabric-only scenarios keep byte-identical logs.
        """
        gang_hosts = sorted(self.placements)
        factor = 1.0
        if len(gang_hosts) > 1:
            group = [self.node_index[name] for name in gang_hosts]
            factor = self.fabric.group_health_factor(group,
                                                     self.engine.now)
        if factor <= 0.0:
            # a downed link is an interruption, not a slowdown; the
            # hard-fault path owns it
            return
        slow = self._gang_slow_factor()
        stretch = ((1.0 / factor) * (1.0 / slow)
                   * (1.0 / self._power_factor))
        if stretch != self.pretrain.step_factor:
            self.pretrain.set_step_factor(stretch)
            self.tracer.set_gauge("network.gang_bandwidth_factor",
                                  factor)
            self._log("gang_step_factor",
                      f"bandwidth_factor={factor:.3f} "
                      f"step_stretch={stretch:.3f}")

    # -- stragglers & power caps --------------------------------------------

    def _gang_slow_factor(self) -> float:
        """Slowest undetected straggler currently hosting the gang."""
        slow = 1.0
        for state in self._straggler_states:
            if state.detected_at is None and state.node in self.placements:
                slow = min(slow, state.factor)
        return slow

    def _expected_residual_stretch(self) -> float:
        """What :meth:`_refresh_gang_factor` composes beyond the fabric.

        The invariant checker compares the gang's step factor against
        this once all fabric windows close: undetected stragglers and
        open power caps legitimately keep the gang stretched.
        """
        return ((1.0 / self._gang_slow_factor())
                * (1.0 / self._power_factor))

    def _straggler_fault(self, index: int, fault: InjectedFault) -> None:
        """A node starts quietly under-delivering.  No failure line is
        logged on its behalf — detection must come from step-time
        deviation, not log parsing."""
        hosts = sorted(self.placements)
        if not hosts:
            self.absorbed_faults += 1
            self._log("fault_absorbed",
                      f"#{index} gang unplaced; no host to degrade")
            return
        node = hosts[fault.node_index % len(hosts)]
        if fault.kind == "silent_degrader":
            decay = self.scenario.silent_decay
            floor = self.scenario.silent_floor
        else:
            decay = self.scenario.straggler_decay
            floor = self.scenario.straggler_floor
        state = _StragglerState(index=index, fault=fault, node=node,
                                decay=decay, floor=floor,
                                last_accrual=self.engine.now)
        self._straggler_states.append(state)
        self.checker.record_straggler(index, self.engine.now,
                                      fault.kind, node)
        self.engine.call_after(self.scenario.straggler_ramp_interval,
                               lambda s=state: self._straggler_ramp(s))

    def _straggler_ramp(self, state: _StragglerState) -> None:
        """One decay tick: the node's step contribution slips further."""
        if state.detected_at is not None:
            return
        self._accrue_straggler(state)
        new_factor = max(state.factor * state.decay, state.floor)
        if new_factor != state.factor:
            state.factor = new_factor
            self._refresh_gang_factor()
        self.engine.call_after(self.scenario.straggler_ramp_interval,
                               lambda s=state: self._straggler_ramp(s))

    def _accrue_straggler(self, state: _StragglerState) -> None:
        """Charge the capacity quietly lost since the last accrual."""
        now = self.engine.now
        if state.node in self.placements:
            state.waste_gpu_seconds += ((1.0 - state.factor)
                                        * (now - state.last_accrual)
                                        * GPUS_PER_NODE)
        state.last_accrual = now

    def _known_stretch(self) -> float:
        """Step stretch explained by *known* causes (fabric, power).

        The deviation probe divides this out, so only unexplained
        slowdown — a straggler — trips the detector.
        """
        factor = 1.0
        gang_hosts = sorted(self.placements)
        if len(gang_hosts) > 1:
            group = [self.node_index[name] for name in gang_hosts]
            factor = self.fabric.group_health_factor(group,
                                                     self.engine.now)
        if factor <= 0.0:
            factor = 1.0
        return (1.0 / factor) * (1.0 / self._power_factor)

    def _straggler_probe(self) -> None:
        """Periodic step-time sample feeding the deviation detector."""
        self.engine.call_after(self.scenario.straggler_probe_interval,
                               self._straggler_probe)
        if not self.pretrain.running:
            self._probe_baseline = None
            return
        now = self.engine.now
        baseline = self._probe_baseline
        self._probe_baseline = (now, self.pretrain.iteration)
        if baseline is None:
            return
        steps = self.pretrain.iteration - baseline[1]
        if steps <= 0:
            return
        observed = (now - baseline[0]) / steps
        expected = self._known_stretch() * self.scenario.step_time
        ratio = observed / expected
        event = self._deviation.observe(self.pretrain.iteration, ratio)
        if event is None:
            return
        self._log("deviation_detected",
                  f"step={event.step} observed/expected={ratio:.2f}x "
                  f"({event.detail})")
        self.tracer.count("chaos.deviations_detected")
        self._convict_stragglers()

    def _convict_stragglers(self) -> None:
        """DCGM scan after a deviation fired: convict the slow nodes."""
        now = self.engine.now
        node_factors = {name: 1.0 for name in sorted(self.placements)}
        for state in self._straggler_states:
            if state.detected_at is None and state.node in node_factors:
                node_factors[state.node] = min(
                    node_factors[state.node], state.factor)
        threshold = self.scenario.straggler_conviction_factor
        slow = sorted(name for name, factor in node_factors.items()
                      if factor < threshold)
        if not slow:
            # deviation without a culprit below the conviction bar —
            # a silent degrader hiding inside the noise floor
            self._log("deviation_unattributed",
                      f"dcgm scan found no node below {threshold:.2f}; "
                      "no action")
            return
        step = self.pretrain.interrupt("straggler")
        self._pretrain_stopped_at = now
        self._log("pretrain_interrupt",
                  f"step={step} reason=straggler "
                  f"nodes={','.join(slow)}")
        plan = self.controller.handle_straggler(
            f"step-time deviation at step {step}", node_factors,
            min_factor=threshold)
        self._log_plan(plan)
        convicted: list[_StragglerState] = []
        for state in self._straggler_states:
            if (state.detected_at is None
                    and state.node in plan.cordoned_nodes):
                self._accrue_straggler(state)
                state.detected_at = now
                convicted.append(state)
                self.stragglers_detected += 1
                self.checker.record_straggler_detected(state.index, now)
                self.checker.record_infra_plan(state.index, plan)
        self._apply_cordons(plan)
        primary = convicted[0] if convicted else None
        injected = (min(state.fault.time for state in convicted)
                    if convicted else now)
        index = primary.index if primary is not None else -1
        fault = (primary.fault if primary is not None
                 else InjectedFault(time=now, kind="straggler",
                                    reason=None, node_index=0,
                                    log_seed=0, target="pretrain"))
        recovery = self._track_recovery(index, fault, plan,
                                        injected=injected,
                                        detected=now, localized=now)
        self._restart_pretrain(step, step, recovery, restore=False)

    def _power_fault(self, index: int, fault: InjectedFault) -> None:
        """A facility power cap opens: the whole fleet steps slower."""
        end = fault.time + fault.duration
        factor = fault.factor if fault.factor is not None else 1.0
        self._log("power_cap_begin",
                  f"#{index} step_factor={factor:.3f} until={end:.3f}")
        self.tracer.complete(f"window:{fault.kind}", fault.time, end,
                             "chaos.power", index=index, factor=factor)
        self._active_power_caps[index] = (factor, self.engine.now)
        self._power_factor = min(
            f for f, _ in self._active_power_caps.values())
        self._refresh_gang_factor()
        self.engine.call_at(end,
                            lambda i=index: self._power_fault_end(i))

    def _power_fault_end(self, index: int) -> None:
        factor, start = self._active_power_caps.pop(index)
        self.power_capped_seconds += self.engine.now - start
        if self._active_power_caps:
            self._power_factor = min(
                f for f, _ in self._active_power_caps.values())
        else:
            self._power_factor = 1.0
        self._log("power_cap_end", f"#{index} step_factor restored")
        self._refresh_gang_factor()

    def _finalize_failure_domains(self) -> None:
        """Horizon bookkeeping for stragglers and still-open power caps."""
        if self._factor_aware:
            # make the gang's step factor consistent with live state
            # before the checker's residual-stretch comparison
            self._refresh_gang_factor()
        for _, (_, start) in sorted(self._active_power_caps.items()):
            self.power_capped_seconds += self.engine.now - start
        for state in self._straggler_states:
            if state.detected_at is not None:
                continue
            self._accrue_straggler(state)
            self.silent_waste_gpu_seconds += state.waste_gpu_seconds
            self.checker.record_silent_waste(
                state.index, state.waste_gpu_seconds / 3600.0)
            self._log("silent_straggler",
                      f"#{state.index} {state.node} "
                      f"kind={state.fault.kind} "
                      f"factor={state.factor:.3f} "
                      f"waste={state.waste_gpu_seconds / 3600.0:.2f} "
                      "GPU-h (never detected)")

    # -- recovery mechanics -------------------------------------------------

    def _track_recovery(self, index: int, fault: InjectedFault,
                        plan: RecoveryPlan, *,
                        injected: float | None = None,
                        detected: float | None = None,
                        localized: float | None = None) -> _Recovery:
        """Open one fault → resume episode (and its trace span).

        ``injected`` / ``detected`` / ``localized`` pin the stage
        timestamps for the MTTD/MTTL/MTTR decomposition.  They default
        to *now*, which is exact for crash-style faults — the failure
        announces itself and localization runs inline — and are
        overridden on the degradation and straggler paths, where
        detection genuinely lags injection.
        """
        now = self.engine.now
        recovery = _Recovery(
            fault_time=now, plan=plan, kind=fault.kind,
            injected_time=now if injected is None else injected,
            detect_time=now if detected is None else detected,
            localize_time=now if localized is None else localized)
        recovery.span = self.tracer.begin(
            f"recovery:{fault.kind}", "chaos.recovery", index=index,
            target=fault.target, reason=fault.reason)
        self.recoveries.append(recovery)
        return recovery

    def _diagnose(self, fault: InjectedFault, victim: str) -> RecoveryPlan:
        log = LogGenerator(seed=fault.log_seed).failed_log(
            fault.reason, n_steps=30)
        tester = (CollectiveTester({victim})
                  if fault.category is FailureCategory.INFRASTRUCTURE
                  else None)
        plan = self.controller.handle_failure(log.lines, tester)
        self._log_plan(plan)
        return plan

    def _log_plan(self, plan: RecoveryPlan) -> None:
        for action in plan.actions:
            self._log(f"recovery_{action.kind}", action.detail)
        for victim, spare in sorted(plan.spare_swaps.items()):
            self.tracer.count("chaos.spare_swaps")
            self.checker.record_spare_swap(self.engine.now, victim,
                                           spare)

    def _apply_cordons(self, plan: RecoveryPlan) -> None:
        for name in sorted(plan.cordoned_nodes):
            self.placements.pop(name, None)
            if name in self.pool_node_names:
                self.scheduler.cordon_gpus(GPUS_PER_NODE)
                self._log("pool_cordon",
                          f"{name}: -{GPUS_PER_NODE} GPUs from pool")
            node = self._by_name[name]
            if node.health is NodeHealth.CORDONED:
                self.engine.call_after(
                    self.scenario.repair_delay,
                    lambda n=name: self._repair(n))

    def _repair(self, name: str) -> None:
        node = self._by_name[name]
        if node.health is not NodeHealth.CORDONED:
            return  # escalated to FAULTY meanwhile; stays out
        node.uncordon()
        self._log("node_repaired", name)
        if self.spare_pool is not None:
            spare = self.spare_pool.reclaim(name)
            if spare is not None:
                self._log("spare_reclaimed",
                          f"{name} rotates in as warm standby "
                          f"(covered by {spare})")
        if name in self.pool_node_names:
            self.scheduler.uncordon_gpus(GPUS_PER_NODE)

    def _pretrain_victim(self, fault: InjectedFault) -> str:
        hosts = sorted(self.placements)
        if self.scenario.pin_node is not None:
            pinned = self.nodes[self.scenario.pin_node].name
            if pinned in self.placements or not hosts:
                return pinned
        if not hosts:  # gang currently unplaced; blame the pinned/first
            return self.nodes[fault.node_index % len(self.nodes)].name
        return hosts[fault.node_index % len(hosts)]

    def _pool_victim(self, fault: InjectedFault) -> str:
        schedulable = [name for name in self.pool_node_names
                       if self._by_name[name].schedulable]
        pool = schedulable or self.pool_node_names
        return pool[fault.node_index % len(pool)]

    def _restart_pretrain(self, step: int, step_at_failure: int,
                          recovery: _Recovery,
                          restore: bool = True) -> None:
        actual = step
        if restore and step > 0:
            loaded = self._attempt_restore(step)
            if loaded is None:  # backend unreachable: park and retry
                self._defer_restore(step, step_at_failure, recovery)
                return
            actual = loaded
        if recovery.deferred:
            recovery.deferred = False
            self.checker.record_restore_resolved()
        hosts, via_swap = self._swap_or_place(recovery.plan)
        if hosts is None:
            self._log("pretrain_stalled",
                      "not enough healthy nodes to re-place the gang")
            return
        previous_hosts = set(self.placements)
        self.placements.clear()
        self.placements.update({name: PRETRAIN_JOB_ID for name in hosts})
        if self._network_aware:
            down_crossed: list[str] = []
            if len(hosts) > 1:
                group = [self.node_index[name] for name in hosts]
                down_crossed = self.fabric.down_links_crossed(
                    group, self.engine.now)
            self.checker.record_gang_placement(self.engine.now,
                                               down_crossed)
            if previous_hosts and set(hosts) != previous_hosts:
                self.gang_migrations += 1
                self.tracer.count("network.gang_migrations")
                self._log("gang_migrated",
                          f"{','.join(sorted(previous_hosts))} -> "
                          f"{','.join(sorted(hosts))}")
        elif (via_swap and previous_hosts
                and set(hosts) != previous_hosts):
            self.gang_migrations += 1
            self.tracer.count("network.gang_migrations")
            self._log("gang_migrated",
                      f"{','.join(sorted(previous_hosts))} -> "
                      f"{','.join(sorted(hosts))}")
        if self._factor_aware:
            self._refresh_gang_factor()
        delay = (self.spare_pool.swap_delay
                 if via_swap and self.spare_pool is not None
                 else self.scenario.restart_delay)
        resume_at = self.engine.now + delay
        recovery.resume_time = resume_at
        if recovery.span is not None:
            self.tracer.end(recovery.span, at=resume_at,
                            outcome="restarted", step=actual,
                            lost=step_at_failure - actual)
        if self._pretrain_stopped_at is not None:
            self.pretrain_downtime += resume_at - self._pretrain_stopped_at
            self._pretrain_stopped_at = None
        self.checker.record_restart(self.engine.now, step_at_failure,
                                    actual)
        self.pretrain.restart_from(actual, delay)
        self._probe_baseline = None
        self._log("pretrain_restart",
                  f"step={actual} lost={step_at_failure - actual} "
                  f"resume_at={resume_at:.3f} "
                  f"nodes={','.join(sorted(hosts))}")

    def _swap_or_place(self, plan: RecoveryPlan | None
                       ) -> tuple[list[str] | None, bool]:
        """Preemptive migration when the plan swapped in hot spares.

        Victims leave the gang during :meth:`_apply_cordons`; spares
        from the plan fill their slots directly, skipping the full
        gang reschedule (the point of keeping warm standbys).  Falls
        back to :meth:`_place_gang` when the composed group does not
        add up to a schedulable gang.
        """
        if (self.spare_pool is not None and plan is not None
                and plan.spare_swaps):
            candidate = sorted(set(self.placements)
                               | set(plan.spare_swaps.values()))
            if (len(candidate) == self.scenario.gang_nodes
                    and all(self._by_name[name].schedulable
                            for name in candidate)):
                return candidate, True
        return self._place_gang(), False

    def _attempt_restore(self, step: int) -> int | None:
        """Load the restart generation through the faulty backend.

        Returns the step actually restored (0 = from scratch; may be
        older than ``step`` after falling back past corrupt
        generations), or None when the backend is unreachable and the
        restore must be deferred.
        """
        self._clock.offset = 0.0
        try:
            loaded = self.checkpointer.load_at_or_before(step)
        except StorageError:
            self._collect_stall()
            self._drain_quarantine()
            return None
        self._collect_stall()
        self._drain_quarantine()
        if loaded is None:
            self._log("restore_scratch",
                      f"planned={step} (no readable generation)")
            self.checker.record_restore(self.engine.now, step, 0)
            return 0
        actual = loaded[0]
        if actual < step:
            self.restore_fallbacks += 1
            self.fallback_lost_iterations += step - actual
            self._log("restore_fallback",
                      f"planned={step} actual={actual} "
                      f"extra_lost={step - actual}")
        self.checker.record_restore(self.engine.now, step, actual)
        return actual

    def _drain_quarantine(self) -> None:
        """Propagate fresh quarantines into the catalog and checker."""
        fresh = self.checkpointer.quarantined[self._quarantine_seen:]
        self._quarantine_seen = len(self.checkpointer.quarantined)
        for qstep, reason in fresh:
            self.catalog.mark_bad(qstep)
            self.checker.record_quarantine(qstep)
            self.tracer.count("checkpoint.quarantined")
            self._log("ckpt_quarantined",
                      f"step={qstep} reason={reason}")

    def _defer_restore(self, step: int, step_at_failure: int,
                       recovery: _Recovery) -> None:
        """Park a restore the backend cannot serve; retry after a delay.

        The gang stays down (downtime keeps accruing) until a retry
        lands after the outage window closes.
        """
        self.restores_deferred += 1
        self.tracer.count("chaos.restores_deferred")
        if not recovery.deferred:
            recovery.deferred = True
            self.checker.record_restore_deferred()
        retry_at = self.engine.now + self.scenario.storage_retry_delay
        self._log("restore_deferred",
                  f"step={step} retry_at={retry_at:.3f} "
                  "(storage unreachable)")
        self.engine.call_after(
            self.scenario.storage_retry_delay,
            lambda: self._restart_pretrain(step, step_at_failure,
                                           recovery))

    def _place_gang(self) -> list[str] | None:
        """Pick gang nodes: healthy non-pool nodes, name order.

        Repaired nodes re-enter this pool, so a flaky node that keeps
        passing repair can rejoin the gang — and be convicted again,
        which is what drives cordon escalation.

        Scenarios with network faults take the topology-aware path
        instead: nodes behind sick NICs are skipped, a single leaf with
        enough capacity is preferred (full bandwidth, no uplink
        exposure), and cross-leaf groups only assemble over uplinks
        that are neither cordoned nor running below the health
        threshold.  With a pod-spanning fabric, single-pod groups are
        preferred (no core-tier exposure) and cross-pod groups only
        span pods with healthy uplinks.
        """
        candidates = sorted(node.name for node in self.nodes
                            if node.name not in self.pool_node_names)
        if self.spare_pool is not None:
            # warm standbys are reserved for swaps, not open placement
            reserved = set(self.spare_pool.available)
            candidates = [name for name in candidates
                          if name not in reserved]
        need = self.scenario.gang_nodes
        if not self._network_aware:
            healthy = [name for name in candidates
                       if self._by_name[name].schedulable]
            if len(healthy) < need:
                return None
            return healthy[:need]
        now = self.engine.now
        threshold = self.scenario.network_min_factor
        healthy = [name for name in candidates
                   if self._by_name[name].schedulable
                   and (self.link_health.factor(
                       nic_link(self.node_index[name]), now)
                       >= threshold)]
        if len(healthy) < need:
            return None
        if need == 1:
            return healthy[:1]
        by_leaf: dict[int, list[str]] = {}
        for name in healthy:
            by_leaf.setdefault(self._leaf_by_name[name],
                               []).append(name)
        for leaf in sorted(by_leaf):
            if len(by_leaf[leaf]) >= need:
                return by_leaf[leaf][:need]

        def leaf_ok(leaf: int) -> bool:
            segment = leaf_link(leaf)
            return (segment not in self.cordoned_segments
                    and self.link_health.factor(segment, now)
                    >= threshold)

        if self._pod_of_leaf is None:
            assembled: list[str] = []
            for leaf in sorted(by_leaf):
                if not leaf_ok(leaf):
                    continue
                assembled.extend(by_leaf[leaf])
                if len(assembled) >= need:
                    return assembled[:need]
            return None

        def pod_ok(pod: int) -> bool:
            segment = pod_link(pod)
            return (segment not in self.cordoned_segments
                    and self.link_health.factor(segment, now)
                    >= threshold)

        by_pod: dict[int, list[int]] = {}
        for leaf in sorted(by_leaf):
            by_pod.setdefault(self._pod_of_leaf[leaf], []).append(leaf)
        for pod in sorted(by_pod):
            assembled = []
            for leaf in by_pod[pod]:
                if not leaf_ok(leaf):
                    continue
                assembled.extend(by_leaf[leaf])
                if len(assembled) >= need:
                    return assembled[:need]
        assembled = []
        for pod in sorted(by_pod):
            if not pod_ok(pod):
                continue
            for leaf in by_pod[pod]:
                if not leaf_ok(leaf):
                    continue
                assembled.extend(by_leaf[leaf])
                if len(assembled) >= need:
                    return assembled[:need]
        return None

    def _resubmit(self, job: Job, recovery: _Recovery) -> None:
        self.resubmissions += 1
        clone = Job(
            job_id=f"{job.job_id}.r{self.resubmissions}",
            cluster=job.cluster,
            job_type=job.job_type,
            submit_time=self.engine.now + self.scenario.restart_delay,
            duration=job.duration,
            gpu_demand=job.gpu_demand,
            final_status=FinalStatus.COMPLETED,
        )
        recovery.resume_time = clone.submit_time
        if recovery.span is not None:
            self.tracer.end(recovery.span, at=clone.submit_time,
                            outcome="resubmitted",
                            clone=clone.job_id)
        self.scheduler.submit(clone)
        self._log("job_resubmitted",
                  f"{job.job_id} -> {clone.job_id} "
                  f"at={clone.submit_time:.3f}")


class PretrainProcessFactory:
    """Builds the gang's step loop (split out for test substitution)."""

    @staticmethod
    def build(engine: Engine, scenario: ChaosScenario, on_checkpoint,
              on_done, tracer: TracerLike | None = None):
        from repro.training.pretrain import PretrainProcess

        return PretrainProcess(
            engine=engine,
            name=PRETRAIN_JOB_ID,
            step_time=scenario.step_time,
            total_iterations=scenario.total_iterations,
            steps_per_checkpoint=scenario.steps_per_checkpoint,
            on_checkpoint=on_checkpoint,
            on_done=on_done,
            tracer=tracer)


def run_scenario(scenario: ChaosScenario,
                 tracer: TracerLike | None = None) -> ChaosResult:
    """Convenience one-shot: build a harness and run it."""
    return ChaosHarness(scenario, tracer=tracer).run()
