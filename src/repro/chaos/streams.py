"""RNG-stream registry: one declared offset per chaos subsystem.

Every chaos fault family samples from its own
``np.random.default_rng(seed + offset)`` stream so that enabling one
family never perturbs another — the property the golden-trace tests
pin byte-for-byte.  Before this registry the offsets were scattered
literals (``self.seed + 2`` …) and a new fault family silently reusing
an offset would shift every golden trace.  Now the offsets live in one
table, ``reprolint``'s SEED001 rule cross-checks every literal
``seed + N`` in sim-owned code against it, and a duplicate value is a
lint error on this file itself.

Offsets are frozen: changing one changes the sampled schedule for that
subsystem and breaks golden-trace byte-identity.  New subsystems take
the next unused integer.
"""

from __future__ import annotations

import numpy as np

#: subsystem name -> seed offset.  Values must be unique (SEED001
#: reports collisions) and must never change once a golden trace pins
#: them.
STREAM_OFFSETS: dict[str, int] = {
    "node_faults": 0,
    "background_jobs": 1,
    "storage": 2,
    "network": 3,
    "pod": 4,
    "partition": 5,
    "straggler": 6,
    "power": 7,
    # streaming arrival processes feeding the long-lived service
    # (repro.workload.streams / repro.service)
    "service_jobs": 8,
    "service_evals": 9,
    # admission-control randomness (repro.service.admission): the
    # token-bucket policy's random-early-drop draws
    "admission": 10,
}


def stream_seed(seed: int, subsystem: str) -> int:
    """The derived seed for ``subsystem``'s isolated RNG stream."""
    try:
        return seed + STREAM_OFFSETS[subsystem]
    except KeyError:
        known = ", ".join(sorted(STREAM_OFFSETS))
        raise KeyError(
            f"unregistered RNG stream {subsystem!r}; declare an offset "
            f"in repro.chaos.streams.STREAM_OFFSETS (known: {known})"
        ) from None


def stream_rng(seed: int, subsystem: str) -> np.random.Generator:
    """A fresh generator on ``subsystem``'s isolated stream.

    Byte-identical to the historical literal
    ``np.random.default_rng(seed + offset)`` call sites it replaced.
    """
    return np.random.default_rng(stream_seed(seed, subsystem))
