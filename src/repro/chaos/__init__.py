"""Live fault-injection (chaos) harness for the §5/§6.1 failure path.

``repro.failures`` samples *offline* failure populations; this package
injects faults into a *running* simulation and verifies the recovery
stack end to end:

* ``scenario`` — seeded, fully reproducible fault schedules drawn from
  the Table 3 taxonomy, plus bundled ready-made scenarios;
* ``harness`` — wires the sim engine, the quota scheduler, a live
  pretraining gang, and the §6.1 recovery controller together, then
  replays the schedule against them;
* ``invariants`` — cross-layer invariants checked after every event;
* ``report`` — MTTF / MTTR / wasted GPU-time / recovery-rate summaries
  comparable to the paper's §6.1.2 numbers.
"""

from repro.chaos.harness import (ChaosHarness, ChaosResult,
                                 PRETRAIN_JOB_ID, run_scenario)
from repro.chaos.invariants import InvariantChecker, InvariantViolation
from repro.chaos.report import ChaosSummary, summarize
from repro.chaos.scenario import (BUNDLED_SCENARIOS, ChaosScenario,
                                  GPUS_PER_NODE, InjectedFault)
from repro.failures.taxonomy import STORAGE_FAULT_KINDS

__all__ = [
    "BUNDLED_SCENARIOS",
    "ChaosHarness",
    "ChaosResult",
    "ChaosScenario",
    "ChaosSummary",
    "GPUS_PER_NODE",
    "InjectedFault",
    "InvariantChecker",
    "InvariantViolation",
    "PRETRAIN_JOB_ID",
    "STORAGE_FAULT_KINDS",
    "run_scenario",
    "summarize",
]
