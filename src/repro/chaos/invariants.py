"""Cross-layer invariants validated after every simulation event.

The checker hangs off :meth:`repro.sim.engine.Engine.add_listener`, so it
runs after *every* executed callback — not just after the chaos harness's
own events.  A violation raises immediately, aborting the run at the
first inconsistent state instead of letting it smear into the summary.

Invariants (the ISSUE's list, plus accounting identities that make the
first two checkable):

1. **Counters** — no GPU counter in the scheduler is ever negative,
   free + allocated + cordoned always equals the configured total, and
   a pending cordon never exceeds the allocated GPUs left to drain it.
2. **Gang all-or-nothing** — every live allocation holds exactly the
   job's full demand, and the job is in the RUNNING state.
3. **Cordon isolation** — no placement (gang node or scheduler capacity)
   remains on a node that is not schedulable.
4. **Rollback monotonicity** — a recovery never restores a checkpoint
   *ahead* of the failure point.
5. **Liveness** (checked at the end of the run) — every injected
   infrastructure failure that hit a running target produced a recovery
   plan that restarts, cordons, or both.

Storage-fault invariants:

6. **No corrupt restore** — a restore never resumes from a generation
   that was corrupted on write or quarantined, and never from a step
   that was not durably persisted at all.
7. **Bounded outages never wedge** — a restore deferred during a
   storage outage must be resolved once the outage ends (plus retry /
   restart slack) before the scenario horizon.
8. **Waste accounting includes fallback loss** — the extra iterations
   lost by falling back past corrupt generations must equal the sum of
   (planned - actual) over all fallback restores.

Network-fault invariants:

9.  **No placement across a downed link** — gang placement never lands
    on a node set whose collective path crosses a link that is down at
    placement time.
10. **Degraded windows end → bandwidth restored** (checked at the end
    of the run) — once every network fault window has closed, the
    gang's step factor must be back to the residual stretch explained
    by undetected stragglers and open power caps (1.0 when there are
    none), and no fabric segment may still be cordoned.
11. **Localization never convicts a healthy segment** — a segment
    conviction must coincide with that segment actually running below
    the NCCL-test pass threshold.

Failure-domain invariants (this PR's additions):

12. **Stragglers are detected or flagged** — a loud straggler whose
    detection bound fits inside the horizon must be detected within
    that bound; any straggler still undetected at the end of the run
    must be flagged as silent waste (quantified in GPU-hours), never
    dropped from the accounting.
13. **Spares are never double-booked** — a hot spare is never listed
    as available twice, never simultaneously available and allocated,
    never allocated to itself, and an available spare never hosts the
    gang.
14. **Partial partitions convict only the sick side** — a node
    convicted by fabric localization must have at least one segment of
    its path (NIC, leaf uplink, pod uplink) actually running below the
    pass threshold at conviction time.

Overload / admission invariants (armed by ``repro.service`` when
admission control is enabled):

15. **Reserved work is untouchable** — admission control never
    rejects, defers, or sheds a reserved-class job (pretrain / SFT /
    MLLM): shedding and rejection may only ever hit best-effort and
    eval work, even while best-effort borrowers occupy the reserved
    quota.
16. **Bounded queues are actually bounded** — when the active
    admission policy declares a best-effort depth bound, the tracked
    best-effort queue depth never exceeds it after *any* engine
    event, under any bundled scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.linkhealth import LinkHealth
from repro.cluster.machine import Node
from repro.core.recovery.controller import HotSparePool, RecoveryPlan
from repro.scheduler.simulator import SchedulerSimulator
from repro.training.pretrain import PretrainProcess


class InvariantViolation(AssertionError):
    """A cross-layer invariant failed during a chaos run."""


@dataclass
class RestartRecord:
    """One recovery restart: where the job was, where it resumed."""

    time: float
    step_at_failure: int
    restored_step: int


@dataclass
class StragglerRecord:
    """One injected straggler and what detection made of it."""

    index: int
    time: float
    kind: str
    node: str
    detected_at: float | None = None
    #: set when the run ends with the straggler undetected; the waste
    #: must be flagged, not silently dropped (invariant 12)
    silent_waste_gpu_hours: float | None = None


@dataclass
class InvariantChecker:
    """Validates the chaos harness's cross-layer state."""

    scheduler: SchedulerSimulator
    nodes: dict[str, Node]
    #: live placements: node name -> job id (gang placements)
    placements: dict[str, str]
    pretrain: PretrainProcess | None = None
    checks_run: int = 0
    restart_records: list[RestartRecord] = field(default_factory=list)
    #: (fault index, plan) for injected infrastructure failures
    infra_plans: list[tuple[int, RecoveryPlan | None]] = field(
        default_factory=list)
    # -- storage-fault state (populated via set_storage_context) --
    #: [start, end) outage windows on the checkpoint backend
    outage_windows: list[tuple[float, float]] = field(default_factory=list)
    #: scenario horizon in simulated seconds
    horizon: float = 0.0
    #: slack after the last outage before an unresolved deferral is a wedge
    wedge_slack: float = 0.0
    #: steps durably persisted (write reported ok)
    good_steps: set[int] = field(default_factory=set)
    #: steps known bad: corrupted on write or quarantined at restore
    bad_steps: set[int] = field(default_factory=set)
    #: (time, step, ok) for every persist attempt
    persist_records: list[tuple[float, int, bool]] = field(
        default_factory=list)
    #: restores currently parked waiting for the backend to return
    deferred_unresolved: int = 0
    #: sum of (planned - actual) over fallback restores, per invariant 8
    fallback_lost: int = 0
    # -- network-fault state (populated via set_network_context) --
    #: the fabric health overlay the scenario armed (None = no faults)
    network_health: LinkHealth | None = None
    #: NCCL-test pass threshold segment convictions are checked against
    network_min_factor: float = 0.5
    #: live cordoned fabric segments (shared reference with the harness)
    cordoned_segments: set[str] = field(default_factory=set)
    #: (time, segment) for every conviction, per invariant 11
    segment_conviction_records: list[tuple[float, str]] = field(
        default_factory=list)
    #: (time, down links crossed) for every gang placement, invariant 9
    gang_placement_records: list[tuple[float, tuple[str, ...]]] = field(
        default_factory=list)
    # -- failure-domain state (stragglers / spares / convictions) --
    #: fault index -> straggler lifecycle record, per invariant 12
    straggler_records: dict[int, StragglerRecord] = field(
        default_factory=dict)
    #: max seconds a loud straggler may run undetected (0 = unchecked)
    straggler_detect_bound: float = 0.0
    #: residual step stretch legitimately left once fabric heals
    #: (undetected stragglers, open power caps); None = expect 1.0
    residual_stretch: Callable[[], float] | None = None
    #: live hot-spare pool (shared reference), per invariant 13
    spare_pool: HotSparePool | None = None
    #: (time, victim, spare) for every preemptive swap
    spare_swap_records: list[tuple[float, str, str]] = field(
        default_factory=list)
    #: (time, node, path factor) for every node conviction by fabric
    #: localization, per invariant 14
    node_conviction_records: list[tuple[float, str, float]] = field(
        default_factory=list)
    # -- overload/admission state (populated via set_admission_context) --
    #: job types admission control must never touch, per invariant 15
    admission_reserved_types: frozenset = frozenset()
    #: live best-effort queue depth oracle (the service's tracker)
    admission_depth_fn: Callable[[], int] | None = None
    #: the active policy's declared depth bound, per invariant 16
    admission_depth_bound: int | None = None
    #: (time, job_id, job_type) for every shed decision
    shed_records: list[tuple[float, str, str]] = field(
        default_factory=list)
    #: (time, job_id, job_type, admitted) for every admission decision
    admission_records: list[tuple[float, str, str, bool]] = field(
        default_factory=list)

    # -- per-event check ----------------------------------------------------

    def check(self, time: float) -> None:
        """Engine listener: validate everything after one event."""
        self.checks_run += 1
        self._check_counters(time)
        self._check_gangs(time)
        self._check_cordon_isolation(time)
        self._check_rollbacks()
        self._check_spares(time)
        self._check_queue_bound(time)

    def _fail(self, time: float, message: str) -> None:
        raise InvariantViolation(f"t={time:.3f}: {message}")

    def _check_counters(self, time: float) -> None:
        sched = self.scheduler
        for counter in ("free_reserved", "free_shared", "cordoned_gpus"):
            value = getattr(sched, counter)
            if value < 0:
                self._fail(time, f"scheduler.{counter} is negative "
                                 f"({value})")
        # A pending cordon is capacity still physically held by running
        # jobs — those GPUs are already counted under ``allocated`` and
        # move to ``cordoned`` only as allocations drain, so pending is
        # bounded by allocated rather than added to the identity.
        booked = (sched.free_reserved + sched.free_shared
                  + sched.cordoned_gpus + sched.gpus_allocated)
        if booked != sched.config.total_gpus:
            self._fail(time, "GPU accounting broken: free "
                             f"{sched.free_reserved}+{sched.free_shared} "
                             f"+ cordoned {sched.cordoned_gpus} "
                             f"+ allocated {sched.gpus_allocated} "
                             f"!= total {sched.config.total_gpus}")
        if sched._pending_cordon > sched.gpus_allocated:
            self._fail(time, "pending cordon "
                             f"{sched._pending_cordon} exceeds allocated "
                             f"{sched.gpus_allocated}: nothing left to "
                             "drain it from")

    def _check_gangs(self, time: float) -> None:
        for job_id, allocation in sorted(
                self.scheduler._allocations.items()):
            held = allocation.from_reserved + allocation.from_shared
            job = allocation.job
            if job is None or held != job.gpu_demand:
                self._fail(time, f"gang violation: job {job_id} holds "
                                 f"{held} GPUs, demands "
                                 f"{job.gpu_demand if job else '?'}")
            if job.state.value != "running":
                self._fail(time, f"job {job_id} holds GPUs but is "
                                 f"{job.state.value}")

    def _check_cordon_isolation(self, time: float) -> None:
        for node_name, job_id in sorted(self.placements.items()):
            node = self.nodes[node_name]
            if not node.schedulable:
                self._fail(time, f"cordoned node {node_name} still hosts "
                                 f"{job_id}")

    def _check_rollbacks(self) -> None:
        for record in self.restart_records:
            if record.restored_step > record.step_at_failure:
                raise InvariantViolation(
                    f"t={record.time:.3f}: rollback moved forward — "
                    f"restored step {record.restored_step} is past the "
                    f"failure at step {record.step_at_failure}")

    def _check_spares(self, time: float) -> None:
        """Invariant 13: the hot-spare pool never double-books a node."""
        pool = self.spare_pool
        if pool is None:
            return
        available = pool.available
        if len(set(available)) != len(available):
            self._fail(time, "spare pool lists a standby twice: "
                             f"{sorted(available)}")
        double = set(available) & set(pool.allocated)
        if double:
            self._fail(time, "spare(s) both available and allocated: "
                             f"{sorted(double)}")
        placed = set(available) & set(self.placements)
        if placed:
            self._fail(time, "reserved spare(s) hosting the gang: "
                             f"{sorted(placed)}")

    def _check_queue_bound(self, time: float) -> None:
        """Invariant 16: a declared best-effort depth bound holds."""
        if (self.admission_depth_bound is None
                or self.admission_depth_fn is None):
            return
        depth = self.admission_depth_fn()
        if depth > self.admission_depth_bound:
            self._fail(time, f"best-effort queue depth {depth} exceeds "
                             f"the admission policy's declared bound "
                             f"{self.admission_depth_bound}")

    # -- end-of-run check ---------------------------------------------------

    def final_check(self, fallback_lost_iterations: int | None = None
                    ) -> None:
        """Liveness + the end-of-run storage invariants."""
        for index, plan in self.infra_plans:
            if plan is None:
                raise InvariantViolation(
                    f"infrastructure fault #{index} never produced a "
                    "recovery plan")
            if (not plan.restart and not plan.cordoned_nodes
                    and not plan.cordoned_segments):
                raise InvariantViolation(
                    f"infrastructure fault #{index} produced a plan with "
                    "neither a restart nor a cordon")
        if self.deferred_unresolved > 0:
            # invariant 7: a bounded outage must not wedge recovery
            if not self.outage_windows:
                raise InvariantViolation(
                    f"{self.deferred_unresolved} restore(s) deferred "
                    "with no storage outage to blame")
            last_end = max(end for _, end in self.outage_windows)
            if last_end + self.wedge_slack < self.horizon:
                raise InvariantViolation(
                    f"{self.deferred_unresolved} restore(s) still "
                    f"deferred although the last outage ended at "
                    f"{last_end:.1f}s (horizon {self.horizon:.1f}s): "
                    "recovery is wedged")
        if (fallback_lost_iterations is not None
                and fallback_lost_iterations != self.fallback_lost):
            # invariant 8: fallback loss must be accounted, not dropped
            raise InvariantViolation(
                f"fallback-generation loss mismatch: harness reports "
                f"{fallback_lost_iterations} iterations, restore "
                f"records sum to {self.fallback_lost}")
        self._check_network_healed()
        self._check_stragglers_accounted()

    def _check_network_healed(self) -> None:
        """Invariant 10: windows over → bandwidth and cordons restored."""
        if self.network_health is None or self.network_health.empty:
            return
        if self.horizon <= self.network_health.last_end():
            return  # the scenario ended inside a fault window
        expected = (self.residual_stretch()
                    if self.residual_stretch is not None else 1.0)
        if (self.pretrain is not None
                and self.pretrain.step_factor != expected):
            raise InvariantViolation(
                "all network fault windows closed but the gang runs at "
                f"step factor {self.pretrain.step_factor:.3f} (expected "
                f"{expected:.3f} — the residual from undetected "
                "stragglers / open power caps)")
        if self.cordoned_segments:
            raise InvariantViolation(
                "all network fault windows closed but segments are "
                f"still cordoned: {sorted(self.cordoned_segments)}")

    def _check_stragglers_accounted(self) -> None:
        """Invariant 12: every straggler is detected or flagged.

        The detection bound only binds while the straggler can show up
        in the gang's timeseries: if recovery migrated the gang off the
        slow node, the deviation signal disappears with it, and the
        flagged-silent-waste path is the correct outcome.
        """
        for index, record in sorted(self.straggler_records.items()):
            if record.detected_at is not None:
                continue
            if (record.kind == "straggler"
                    and self.straggler_detect_bound > 0.0
                    and record.time + self.straggler_detect_bound
                    <= self.horizon
                    and record.node in self.placements):
                raise InvariantViolation(
                    f"straggler #{index} on {record.node} still hosts "
                    f"the gang but was never detected although the "
                    f"{self.straggler_detect_bound:.0f}s bound since "
                    f"injection at {record.time:.1f}s fit inside the "
                    "horizon")
            if record.silent_waste_gpu_hours is None:
                raise InvariantViolation(
                    f"undetected {record.kind} #{index} on "
                    f"{record.node} was not flagged as silent waste")

    # -- bookkeeping for the harness ---------------------------------------

    def record_restart(self, time: float, step_at_failure: int,
                       restored_step: int) -> None:
        """Log a recovery restart for rollback-monotonicity checking."""
        self.restart_records.append(
            RestartRecord(time, step_at_failure, restored_step))

    def record_infra_plan(self, fault_index: int,
                          plan: RecoveryPlan | None) -> None:
        """Log the plan (or lack of one) for an infrastructure fault."""
        self.infra_plans.append((fault_index, plan))

    # -- storage-fault bookkeeping -----------------------------------------

    def set_storage_context(self, outage_windows, horizon: float,
                            wedge_slack: float) -> None:
        """Install the scenario's storage-fault schedule for checking."""
        self.outage_windows = [(float(s), float(e))
                               for s, e in outage_windows]
        self.horizon = float(horizon)
        self.wedge_slack = float(wedge_slack)

    def record_persist(self, time: float, step: int, ok: bool) -> None:
        """Log one checkpoint persist outcome."""
        self.persist_records.append((time, step, ok))
        if ok:
            self.good_steps.add(step)

    def record_corrupt_write(self, step: int) -> None:
        """Mark a generation the fault layer corrupted on its way down."""
        self.bad_steps.add(step)

    def record_quarantine(self, step: int) -> None:
        """Mark a generation quarantined after failing restore."""
        self.bad_steps.add(step)

    def record_restore(self, time: float, planned: int,
                       actual: int) -> None:
        """Validate one completed restore (invariants 6 and 8)."""
        if actual > planned:
            raise InvariantViolation(
                f"t={time:.3f}: restore moved forward — loaded step "
                f"{actual}, planned {planned}")
        if actual in self.bad_steps:
            raise InvariantViolation(
                f"t={time:.3f}: restore loaded step {actual}, which is "
                "a corrupt/quarantined generation")
        if actual > 0 and actual not in self.good_steps:
            raise InvariantViolation(
                f"t={time:.3f}: restore loaded step {actual}, which was "
                "never durably persisted")
        if actual < planned:
            self.fallback_lost += planned - actual

    def record_restore_deferred(self) -> None:
        """A restore is parked waiting for the backend."""
        self.deferred_unresolved += 1

    def record_restore_resolved(self) -> None:
        """A previously deferred restore completed."""
        self.deferred_unresolved -= 1

    # -- network-fault bookkeeping -----------------------------------------

    def set_network_context(self, health: LinkHealth,
                            min_factor: float,
                            cordoned_segments: set[str]) -> None:
        """Install the fabric overlay + live cordon set for checking.

        ``cordoned_segments`` is the harness's live set (shared by
        reference), so the end-of-run check sees its final state.
        """
        self.network_health = health
        self.network_min_factor = float(min_factor)
        self.cordoned_segments = cordoned_segments

    def record_gang_placement(self, time: float,
                              down_crossed: list[str]) -> None:
        """Invariant 9: a gang placement must not cross a downed link."""
        self.gang_placement_records.append((time, tuple(down_crossed)))
        if down_crossed:
            raise InvariantViolation(
                f"t={time:.3f}: gang placed across downed link(s) "
                f"{sorted(down_crossed)}")

    def record_segment_conviction(self, time: float,
                                  segment: str) -> None:
        """Invariant 11: only actually-sick segments get convicted."""
        self.segment_conviction_records.append((time, segment))
        if self.network_health is None:
            raise InvariantViolation(
                f"t={time:.3f}: segment {segment} convicted with no "
                "network fault context armed")
        factor = self.network_health.factor(segment, time)
        if factor >= self.network_min_factor:
            raise InvariantViolation(
                f"t={time:.3f}: localization convicted segment "
                f"{segment} running at factor {factor:.3f} — at or "
                f"above the {self.network_min_factor:.3f} threshold")

    def record_node_conviction(self, time: float, name: str,
                               path_factor: float) -> None:
        """Invariant 14: convicted nodes must have a sick fabric path."""
        self.node_conviction_records.append((time, name, path_factor))
        if path_factor >= self.network_min_factor:
            raise InvariantViolation(
                f"t={time:.3f}: localization convicted node {name} "
                f"whose fabric path runs at factor {path_factor:.3f} — "
                f"at or above the {self.network_min_factor:.3f} "
                "threshold (a partial partition must convict only the "
                "sick side)")

    # -- failure-domain bookkeeping -----------------------------------------

    def set_straggler_context(self, detect_bound: float) -> None:
        """Arm the invariant-12 detection bound."""
        self.straggler_detect_bound = float(detect_bound)

    def set_residual_stretch(self,
                             residual: Callable[[], float]) -> None:
        """Install the harness's residual step-stretch oracle."""
        self.residual_stretch = residual

    def set_spare_context(self, pool: HotSparePool) -> None:
        """Install the live hot-spare pool (shared reference)."""
        self.spare_pool = pool

    def record_straggler(self, index: int, time: float, kind: str,
                         node: str) -> None:
        """A straggler fault armed on ``node`` (no failure log line)."""
        self.straggler_records[index] = StragglerRecord(
            index=index, time=time, kind=kind, node=node)

    def record_straggler_detected(self, index: int,
                                  time: float) -> None:
        """Deviation detection convicted straggler ``index``."""
        record = self.straggler_records[index]
        record.detected_at = time
        if (record.kind == "straggler"
                and self.straggler_detect_bound > 0.0
                and time - record.time > self.straggler_detect_bound):
            raise InvariantViolation(
                f"straggler #{index} on {record.node} detected "
                f"{time - record.time:.0f}s after injection — past the "
                f"{self.straggler_detect_bound:.0f}s bound")

    def record_silent_waste(self, index: int,
                            gpu_hours: float) -> None:
        """An undetected straggler's waste was flagged at the horizon."""
        self.straggler_records[index].silent_waste_gpu_hours = gpu_hours

    # -- overload/admission bookkeeping ------------------------------------

    def set_admission_context(self, reserved_types: frozenset,
                              depth_fn: Callable[[], int],
                              depth_bound: int | None) -> None:
        """Arm invariants 15–16 for an admission-controlled service.

        ``depth_fn`` is the service's live best-effort depth tracker
        (shared by reference, like the cordon set), sampled after
        every engine event while ``depth_bound`` is not ``None``.
        """
        self.admission_reserved_types = frozenset(reserved_types)
        self.admission_depth_fn = depth_fn
        self.admission_depth_bound = (None if depth_bound is None
                                      else int(depth_bound))

    def record_admission(self, time: float, job,
                         admitted: bool) -> None:
        """Invariant 15: reserved-class work is never rejected."""
        self.admission_records.append(
            (time, job.job_id, job.job_type.value, admitted))
        if (not admitted
                and job.job_type in self.admission_reserved_types):
            raise InvariantViolation(
                f"t={time:.3f}: admission rejected reserved-class job "
                f"{job.job_id} ({job.job_type.value}) — reserved work "
                "must always be admitted")

    def record_shed(self, time: float, job) -> None:
        """Invariant 15: reserved-class work is never shed."""
        self.shed_records.append(
            (time, job.job_id, job.job_type.value))
        if job.job_type in self.admission_reserved_types:
            raise InvariantViolation(
                f"t={time:.3f}: load shedding hit reserved-class job "
                f"{job.job_id} ({job.job_type.value}) — shedding may "
                "only touch best-effort and eval work")

    def record_spare_swap(self, time: float, victim: str,
                          spare: str) -> None:
        """Invariant 13: one preemptive swap must be coherent."""
        self.spare_swap_records.append((time, victim, spare))
        if spare == victim:
            raise InvariantViolation(
                f"t={time:.3f}: spare swap allocated {spare} to cover "
                "itself")
        pool = self.spare_pool
        if pool is not None and pool.allocated.get(spare) != victim:
            raise InvariantViolation(
                f"t={time:.3f}: swap says {spare} covers {victim} but "
                "the pool's allocation table disagrees "
                f"({pool.allocated.get(spare)!r})")
