"""Cross-layer invariants validated after every simulation event.

The checker hangs off :meth:`repro.sim.engine.Engine.add_listener`, so it
runs after *every* executed callback — not just after the chaos harness's
own events.  A violation raises immediately, aborting the run at the
first inconsistent state instead of letting it smear into the summary.

Invariants (the ISSUE's list, plus accounting identities that make the
first two checkable):

1. **Counters** — no GPU counter in the scheduler is ever negative, and
   free + allocated + cordoned (+ pending cordons) always equals the
   configured total.
2. **Gang all-or-nothing** — every live allocation holds exactly the
   job's full demand, and the job is in the RUNNING state.
3. **Cordon isolation** — no placement (gang node or scheduler capacity)
   remains on a node that is not schedulable.
4. **Rollback monotonicity** — a recovery never restores a checkpoint
   *ahead* of the failure point.
5. **Liveness** (checked at the end of the run) — every injected
   infrastructure failure that hit a running target produced a recovery
   plan that restarts, cordons, or both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import Node
from repro.core.recovery.controller import RecoveryPlan
from repro.scheduler.simulator import SchedulerSimulator
from repro.training.pretrain import PretrainProcess


class InvariantViolation(AssertionError):
    """A cross-layer invariant failed during a chaos run."""


@dataclass
class RestartRecord:
    """One recovery restart: where the job was, where it resumed."""

    time: float
    step_at_failure: int
    restored_step: int


@dataclass
class InvariantChecker:
    """Validates the chaos harness's cross-layer state."""

    scheduler: SchedulerSimulator
    nodes: dict[str, Node]
    #: live placements: node name -> job id (gang placements)
    placements: dict[str, str]
    pretrain: PretrainProcess | None = None
    checks_run: int = 0
    restart_records: list[RestartRecord] = field(default_factory=list)
    #: (fault index, plan) for injected infrastructure failures
    infra_plans: list[tuple[int, RecoveryPlan | None]] = field(
        default_factory=list)

    # -- per-event check ----------------------------------------------------

    def check(self, time: float) -> None:
        """Engine listener: validate everything after one event."""
        self.checks_run += 1
        self._check_counters(time)
        self._check_gangs(time)
        self._check_cordon_isolation(time)
        self._check_rollbacks()

    def _fail(self, time: float, message: str) -> None:
        raise InvariantViolation(f"t={time:.3f}: {message}")

    def _check_counters(self, time: float) -> None:
        sched = self.scheduler
        for counter in ("free_reserved", "free_shared", "cordoned_gpus"):
            value = getattr(sched, counter)
            if value < 0:
                self._fail(time, f"scheduler.{counter} is negative "
                                 f"({value})")
        booked = (sched.free_reserved + sched.free_shared
                  + sched.cordoned_gpus + sched._pending_cordon
                  + sched.gpus_allocated)
        if booked != sched.config.total_gpus:
            self._fail(time, "GPU accounting broken: free "
                             f"{sched.free_reserved}+{sched.free_shared} "
                             f"+ cordoned {sched.cordoned_gpus} "
                             f"(+{sched._pending_cordon} pending) "
                             f"+ allocated {sched.gpus_allocated} "
                             f"!= total {sched.config.total_gpus}")

    def _check_gangs(self, time: float) -> None:
        for job_id, allocation in sorted(
                self.scheduler._allocations.items()):
            held = allocation.from_reserved + allocation.from_shared
            job = allocation.job
            if job is None or held != job.gpu_demand:
                self._fail(time, f"gang violation: job {job_id} holds "
                                 f"{held} GPUs, demands "
                                 f"{job.gpu_demand if job else '?'}")
            if job.state.value != "running":
                self._fail(time, f"job {job_id} holds GPUs but is "
                                 f"{job.state.value}")

    def _check_cordon_isolation(self, time: float) -> None:
        for node_name, job_id in sorted(self.placements.items()):
            node = self.nodes[node_name]
            if not node.schedulable:
                self._fail(time, f"cordoned node {node_name} still hosts "
                                 f"{job_id}")

    def _check_rollbacks(self) -> None:
        for record in self.restart_records:
            if record.restored_step > record.step_at_failure:
                raise InvariantViolation(
                    f"t={record.time:.3f}: rollback moved forward — "
                    f"restored step {record.restored_step} is past the "
                    f"failure at step {record.step_at_failure}")

    # -- end-of-run check ---------------------------------------------------

    def final_check(self) -> None:
        """Liveness: injected infra failures must yield recovery plans."""
        for index, plan in self.infra_plans:
            if plan is None:
                raise InvariantViolation(
                    f"infrastructure fault #{index} never produced a "
                    "recovery plan")
            if not plan.restart and not plan.cordoned_nodes:
                raise InvariantViolation(
                    f"infrastructure fault #{index} produced a plan with "
                    "neither a restart nor a cordon")

    # -- bookkeeping for the harness ---------------------------------------

    def record_restart(self, time: float, step_at_failure: int,
                       restored_step: int) -> None:
        """Log a recovery restart for rollback-monotonicity checking."""
        self.restart_records.append(
            RestartRecord(time, step_at_failure, restored_step))

    def record_infra_plan(self, fault_index: int,
                          plan: RecoveryPlan | None) -> None:
        """Log the plan (or lack of one) for an infrastructure fault."""
        self.infra_plans.append((fault_index, plan))
