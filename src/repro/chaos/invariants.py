"""Cross-layer invariants validated after every simulation event.

The checker hangs off :meth:`repro.sim.engine.Engine.add_listener`, so it
runs after *every* executed callback — not just after the chaos harness's
own events.  A violation raises immediately, aborting the run at the
first inconsistent state instead of letting it smear into the summary.

Invariants (the ISSUE's list, plus accounting identities that make the
first two checkable):

1. **Counters** — no GPU counter in the scheduler is ever negative, and
   free + allocated + cordoned (+ pending cordons) always equals the
   configured total.
2. **Gang all-or-nothing** — every live allocation holds exactly the
   job's full demand, and the job is in the RUNNING state.
3. **Cordon isolation** — no placement (gang node or scheduler capacity)
   remains on a node that is not schedulable.
4. **Rollback monotonicity** — a recovery never restores a checkpoint
   *ahead* of the failure point.
5. **Liveness** (checked at the end of the run) — every injected
   infrastructure failure that hit a running target produced a recovery
   plan that restarts, cordons, or both.

Storage-fault invariants (this PR's additions):

6. **No corrupt restore** — a restore never resumes from a generation
   that was corrupted on write or quarantined, and never from a step
   that was not durably persisted at all.
7. **Bounded outages never wedge** — a restore deferred during a
   storage outage must be resolved once the outage ends (plus retry /
   restart slack) before the scenario horizon.
8. **Waste accounting includes fallback loss** — the extra iterations
   lost by falling back past corrupt generations must equal the sum of
   (planned - actual) over all fallback restores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import Node
from repro.core.recovery.controller import RecoveryPlan
from repro.scheduler.simulator import SchedulerSimulator
from repro.training.pretrain import PretrainProcess


class InvariantViolation(AssertionError):
    """A cross-layer invariant failed during a chaos run."""


@dataclass
class RestartRecord:
    """One recovery restart: where the job was, where it resumed."""

    time: float
    step_at_failure: int
    restored_step: int


@dataclass
class InvariantChecker:
    """Validates the chaos harness's cross-layer state."""

    scheduler: SchedulerSimulator
    nodes: dict[str, Node]
    #: live placements: node name -> job id (gang placements)
    placements: dict[str, str]
    pretrain: PretrainProcess | None = None
    checks_run: int = 0
    restart_records: list[RestartRecord] = field(default_factory=list)
    #: (fault index, plan) for injected infrastructure failures
    infra_plans: list[tuple[int, RecoveryPlan | None]] = field(
        default_factory=list)
    # -- storage-fault state (populated via set_storage_context) --
    #: [start, end) outage windows on the checkpoint backend
    outage_windows: list[tuple[float, float]] = field(default_factory=list)
    #: scenario horizon in simulated seconds
    horizon: float = 0.0
    #: slack after the last outage before an unresolved deferral is a wedge
    wedge_slack: float = 0.0
    #: steps durably persisted (write reported ok)
    good_steps: set[int] = field(default_factory=set)
    #: steps known bad: corrupted on write or quarantined at restore
    bad_steps: set[int] = field(default_factory=set)
    #: (time, step, ok) for every persist attempt
    persist_records: list[tuple[float, int, bool]] = field(
        default_factory=list)
    #: restores currently parked waiting for the backend to return
    deferred_unresolved: int = 0
    #: sum of (planned - actual) over fallback restores, per invariant 8
    fallback_lost: int = 0

    # -- per-event check ----------------------------------------------------

    def check(self, time: float) -> None:
        """Engine listener: validate everything after one event."""
        self.checks_run += 1
        self._check_counters(time)
        self._check_gangs(time)
        self._check_cordon_isolation(time)
        self._check_rollbacks()

    def _fail(self, time: float, message: str) -> None:
        raise InvariantViolation(f"t={time:.3f}: {message}")

    def _check_counters(self, time: float) -> None:
        sched = self.scheduler
        for counter in ("free_reserved", "free_shared", "cordoned_gpus"):
            value = getattr(sched, counter)
            if value < 0:
                self._fail(time, f"scheduler.{counter} is negative "
                                 f"({value})")
        booked = (sched.free_reserved + sched.free_shared
                  + sched.cordoned_gpus + sched._pending_cordon
                  + sched.gpus_allocated)
        if booked != sched.config.total_gpus:
            self._fail(time, "GPU accounting broken: free "
                             f"{sched.free_reserved}+{sched.free_shared} "
                             f"+ cordoned {sched.cordoned_gpus} "
                             f"(+{sched._pending_cordon} pending) "
                             f"+ allocated {sched.gpus_allocated} "
                             f"!= total {sched.config.total_gpus}")

    def _check_gangs(self, time: float) -> None:
        for job_id, allocation in sorted(
                self.scheduler._allocations.items()):
            held = allocation.from_reserved + allocation.from_shared
            job = allocation.job
            if job is None or held != job.gpu_demand:
                self._fail(time, f"gang violation: job {job_id} holds "
                                 f"{held} GPUs, demands "
                                 f"{job.gpu_demand if job else '?'}")
            if job.state.value != "running":
                self._fail(time, f"job {job_id} holds GPUs but is "
                                 f"{job.state.value}")

    def _check_cordon_isolation(self, time: float) -> None:
        for node_name, job_id in sorted(self.placements.items()):
            node = self.nodes[node_name]
            if not node.schedulable:
                self._fail(time, f"cordoned node {node_name} still hosts "
                                 f"{job_id}")

    def _check_rollbacks(self) -> None:
        for record in self.restart_records:
            if record.restored_step > record.step_at_failure:
                raise InvariantViolation(
                    f"t={record.time:.3f}: rollback moved forward — "
                    f"restored step {record.restored_step} is past the "
                    f"failure at step {record.step_at_failure}")

    # -- end-of-run check ---------------------------------------------------

    def final_check(self, fallback_lost_iterations: int | None = None
                    ) -> None:
        """Liveness + the end-of-run storage invariants."""
        for index, plan in self.infra_plans:
            if plan is None:
                raise InvariantViolation(
                    f"infrastructure fault #{index} never produced a "
                    "recovery plan")
            if not plan.restart and not plan.cordoned_nodes:
                raise InvariantViolation(
                    f"infrastructure fault #{index} produced a plan with "
                    "neither a restart nor a cordon")
        if self.deferred_unresolved > 0:
            # invariant 7: a bounded outage must not wedge recovery
            if not self.outage_windows:
                raise InvariantViolation(
                    f"{self.deferred_unresolved} restore(s) deferred "
                    "with no storage outage to blame")
            last_end = max(end for _, end in self.outage_windows)
            if last_end + self.wedge_slack < self.horizon:
                raise InvariantViolation(
                    f"{self.deferred_unresolved} restore(s) still "
                    f"deferred although the last outage ended at "
                    f"{last_end:.1f}s (horizon {self.horizon:.1f}s): "
                    "recovery is wedged")
        if (fallback_lost_iterations is not None
                and fallback_lost_iterations != self.fallback_lost):
            # invariant 8: fallback loss must be accounted, not dropped
            raise InvariantViolation(
                f"fallback-generation loss mismatch: harness reports "
                f"{fallback_lost_iterations} iterations, restore "
                f"records sum to {self.fallback_lost}")

    # -- bookkeeping for the harness ---------------------------------------

    def record_restart(self, time: float, step_at_failure: int,
                       restored_step: int) -> None:
        """Log a recovery restart for rollback-monotonicity checking."""
        self.restart_records.append(
            RestartRecord(time, step_at_failure, restored_step))

    def record_infra_plan(self, fault_index: int,
                          plan: RecoveryPlan | None) -> None:
        """Log the plan (or lack of one) for an infrastructure fault."""
        self.infra_plans.append((fault_index, plan))

    # -- storage-fault bookkeeping -----------------------------------------

    def set_storage_context(self, outage_windows, horizon: float,
                            wedge_slack: float) -> None:
        """Install the scenario's storage-fault schedule for checking."""
        self.outage_windows = [(float(s), float(e))
                               for s, e in outage_windows]
        self.horizon = float(horizon)
        self.wedge_slack = float(wedge_slack)

    def record_persist(self, time: float, step: int, ok: bool) -> None:
        """Log one checkpoint persist outcome."""
        self.persist_records.append((time, step, ok))
        if ok:
            self.good_steps.add(step)

    def record_corrupt_write(self, step: int) -> None:
        """Mark a generation the fault layer corrupted on its way down."""
        self.bad_steps.add(step)

    def record_quarantine(self, step: int) -> None:
        """Mark a generation quarantined after failing restore."""
        self.bad_steps.add(step)

    def record_restore(self, time: float, planned: int,
                       actual: int) -> None:
        """Validate one completed restore (invariants 6 and 8)."""
        if actual > planned:
            raise InvariantViolation(
                f"t={time:.3f}: restore moved forward — loaded step "
                f"{actual}, planned {planned}")
        if actual in self.bad_steps:
            raise InvariantViolation(
                f"t={time:.3f}: restore loaded step {actual}, which is "
                "a corrupt/quarantined generation")
        if actual > 0 and actual not in self.good_steps:
            raise InvariantViolation(
                f"t={time:.3f}: restore loaded step {actual}, which was "
                "never durably persisted")
        if actual < planned:
            self.fallback_lost += planned - actual

    def record_restore_deferred(self) -> None:
        """A restore is parked waiting for the backend."""
        self.deferred_unresolved += 1

    def record_restore_resolved(self) -> None:
        """A previously deferred restore completed."""
        self.deferred_unresolved -= 1
