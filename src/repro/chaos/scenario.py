"""Seeded, reproducible chaos scenarios.

A :class:`ChaosScenario` is a declarative description of one live
fault-injection run: the cluster shape, a long pretraining gang, a stream
of best-effort background jobs, and a schedule of faults drawn from the
Table 3 taxonomy.  Everything random is sampled *up front* from a single
``numpy.random.Generator`` seeded by the scenario, so the same scenario
always produces the same fault schedule, the same background trace, and —
because the harness itself never samples — the same event log, byte for
byte.

Script-category faults are always routed at the best-effort pool rather
than the pretraining gang: the paper's controller never restarts a script
error (it would fail identically), so aiming one at the gang would simply
end the campaign instead of exercising the recovery loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.chaos.streams import stream_rng
from repro.cluster.linkhealth import leaf_link, nic_link, pod_link
from repro.failures.taxonomy import (NETWORK_CHAOS_REASONS,
                                     NETWORK_FAULT_KINDS, POD_FAULT_KINDS,
                                     STORAGE_CHAOS_REASON,
                                     STORAGE_FAULT_KINDS, TAXONOMY,
                                     FailureCategory, taxonomy_by_reason)
from repro.monitor.dcgm import GpuSample
from repro.monitor.power import GpuPowerModel, PowerCappingModel
from repro.monitor.temperature import TemperatureModel
from repro.scheduler.job import Job, JobType

#: GPUs per node throughout (Table 1: 8x A100 per node).
GPUS_PER_NODE = 8


@dataclass(frozen=True)
class InjectedFault:
    """One scheduled fault, fully resolved at build time."""

    #: absolute simulated time of injection, seconds
    time: float
    #: "failure" (a Table 3 reason), "loss_spike", "hang", one of the
    #: storage kinds ("storage_outage" / "storage_slowdown" /
    #: "ckpt_corruption"), one of the fabric kinds ("link_down" /
    #: "link_degraded" / "switch_down" / "pod_link_down" /
    #: "pod_link_degraded" / "partial_partition"), a straggler kind
    #: ("straggler" / "silent_degrader"), or "power_cap"
    kind: str
    #: taxonomy reason key for kind == "failure", storage, and fabric
    #: kinds; None for anomaly, straggler, and power kinds (they never
    #: emit a failure log line)
    reason: str | None
    #: "pretrain" (hits the gang), "scheduler" (kills a running job),
    #: "storage" (perturbs the checkpoint backend), "network"
    #: (degrades the fabric), or "power" (caps the fleet)
    target: str
    #: victim selector, reduced modulo the target's node pool at runtime
    node_index: int
    #: seed for the synthetic runtime log of this fault
    log_seed: int
    #: fault-window length in seconds for storage/network/power kinds
    duration: float = 0.0
    #: affected fabric link id for network kinds ("nic:{node}" /
    #: "leaf:{leaf}" / "pod:{p}"); None otherwise
    link: str | None = None
    #: affected link *set* for partial partitions, parallel to
    #: ``link_factors`` (some links below the NCCL pass threshold, some
    #: above — the asymmetry that makes localization hard)
    links: tuple[str, ...] = ()
    #: per-link degradation factors for ``links``
    link_factors: tuple[float, ...] = ()
    #: resolved fleet step-rate factor for "power_cap" (the monitor
    #: power/thermal draw pushed through the capping curve at build
    #: time, keeping the harness sampling-free); None otherwise
    factor: float | None = None

    @property
    def category(self) -> FailureCategory | None:
        if self.reason is None:
            return None
        return taxonomy_by_reason()[self.reason].category


@dataclass(frozen=True)
class ChaosScenario:
    """One reproducible fault-injection experiment.

    The node fleet is split into three fixed roles: the pretraining gang
    (``pretrain_gpus / 8`` nodes), the scheduler pool
    (``scheduler_gpus / 8`` nodes), and the remainder as hot spares the
    gang re-places onto when one of its nodes is cordoned.
    """

    name: str
    seed: int = 0
    n_nodes: int = 16
    duration: float = 24.0 * 3600.0
    # -- pretraining gang --
    pretrain_gpus: int = 32
    step_time: float = 15.0
    total_iterations: int = 1_000_000
    steps_per_checkpoint: int = 120
    # -- background best-effort jobs --
    scheduler_gpus: int = 64
    n_background_jobs: int = 24
    # -- fault schedule --
    n_faults: int = 8
    loss_spike_fraction: float = 0.125
    hang_fraction: float = 0.125
    #: fraction of taxonomy failures aimed at the gang (vs the pool)
    pretrain_target_fraction: float = 0.6
    #: detection + two-round NCCL test + reschedule, seconds (§6.1: the
    #: automatic system restarts within minutes)
    restart_delay: float = 300.0
    #: time until a cordoned (not escalated) node is repaired and returns
    #: to service; faulty nodes never return
    repair_delay: float = 2.0 * 3600.0
    #: restrict taxonomy sampling to one category (None = all)
    category_filter: str | None = None
    #: pin every fault to one victim node (repeat-offender scenarios)
    pin_node: int | None = None
    # -- storage fault schedule (targets the checkpoint backend) --
    n_storage_faults: int = 0
    #: relative weights of (outage, slowdown, corruption) draws
    storage_fault_mix: tuple[float, float, float] = (0.4, 0.3, 0.3)
    storage_outage_duration: float = 1800.0
    storage_slowdown_duration: float = 3600.0
    #: added clock-seconds per read/write during a slowdown window
    storage_slowdown_delay: float = 20.0
    ckpt_corruption_duration: float = 2400.0
    #: how long a deferred restore waits before retrying the backend
    storage_retry_delay: float = 600.0
    #: total clock budget one persist may burn across retries
    storage_persist_deadline: float = 120.0
    # -- network fault schedule (degrades the fabric) --
    n_network_faults: int = 0
    #: relative weights of (link_down, link_degraded, switch_down)
    network_fault_mix: tuple[float, float, float] = (0.45, 0.35, 0.2)
    link_down_duration: float = 1800.0
    link_degraded_duration: float = 3600.0
    #: bandwidth fraction a degraded link retains during its window
    link_degraded_factor: float = 0.35
    switch_down_duration: float = 1200.0
    #: how long monitoring takes to notice a slow (not dead) gang link
    degraded_detect_delay: float = 900.0
    #: NCCL-test pass threshold: a path below this factor fails probes,
    #: and the gang migrates off segments this sick
    network_min_factor: float = 0.5
    #: fat-tree leaf domain size for chaos runs (kept small so modest
    #: fleets still span several leaves and uplink faults matter)
    nodes_per_leaf: int = 4
    #: aim network faults at links the gang crosses (vs the whole
    #: fabric) — mirrors pretrain_target_fraction for the fabric axis
    network_target_gang: bool = True
    #: fat-tree pod domain size in leaves; the default matches
    #: FatTreeConfig so legacy scenarios keep a single-pod fabric
    leaves_per_pod: int = 8
    # -- pod (core-tier) fault schedule --
    n_pod_faults: int = 0
    #: relative weights of (pod_link_down, pod_link_degraded)
    pod_fault_mix: tuple[float, float] = (0.5, 0.5)
    pod_link_down_duration: float = 1800.0
    pod_link_degraded_duration: float = 3600.0
    #: bandwidth fraction a degraded pod uplink retains
    pod_link_degraded_factor: float = 0.35
    # -- partial-partition fault schedule --
    n_partition_faults: int = 0
    partition_duration: float = 2700.0
    #: NICs per partition; even positions degrade below the NCCL pass
    #: threshold, odd positions stay above it (the asymmetry)
    partition_size: int = 3
    partition_low_factor: float = 0.3
    partition_high_factor: float = 0.8
    # -- straggler / silent-degrader schedule --
    n_straggler_faults: int = 0
    #: probability a straggler fault is a silent degrader (stays under
    #: the deviation-detection threshold; flagged as silent waste)
    straggler_silent_fraction: float = 0.35
    #: seconds between decay steps of a straggling node's contribution
    straggler_ramp_interval: float = 600.0
    #: per-ramp multiplicative decay and floor for loud stragglers
    straggler_decay: float = 0.88
    straggler_floor: float = 0.45
    #: gentler decay/floor for silent degraders — the floor's stretch
    #: (1/0.9 ≈ 1.11) stays below the detection threshold
    silent_decay: float = 0.97
    silent_floor: float = 0.90
    #: seconds between monitoring probes of the observed step time
    straggler_probe_interval: float = 300.0
    #: observed/nominal step-time ratio that counts as deviation
    straggler_detect_threshold: float = 1.15
    #: consecutive deviant probes before the detector fires
    straggler_detect_patience: int = 2
    #: DCGM-scan conviction threshold: nodes measured below this step
    #: contribution are cordoned after a deviation fires
    straggler_conviction_factor: float = 0.95
    #: invariant 12's bound: a loud straggler must be detected within
    #: this window of injection (or the run fails its invariants)
    straggler_detect_bound: float = 2.5 * 3600.0
    # -- power-capping schedule --
    n_power_faults: int = 0
    power_cap_duration: float = 3600.0
    #: facility cap fed to the PowerCappingModel curve
    power_cap_watts: float = 300.0
    # -- hot-spare pool --
    #: spare-role nodes kept warm for preemptive migration (taken from
    #: the tail of the fleet); 0 = always gang-reschedule
    hot_spares: int = 0
    #: NCCL re-init time onto a warm spare (vs restart_delay for a
    #: full gang reschedule)
    spare_swap_delay: float = 120.0
    #: explicit fault schedule; overrides sampling when non-empty
    faults: tuple[InjectedFault, ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.n_storage_faults < 0:
            raise ValueError("n_storage_faults must be non-negative")
        if (len(self.storage_fault_mix) != 3
                or any(w < 0 for w in self.storage_fault_mix)
                or sum(self.storage_fault_mix) <= 0):
            raise ValueError("storage_fault_mix must be 3 non-negative "
                             "weights with a positive sum")
        if min(self.storage_outage_duration,
               self.storage_slowdown_duration,
               self.ckpt_corruption_duration) <= 0:
            raise ValueError("storage fault durations must be positive")
        if self.storage_retry_delay <= 0:
            raise ValueError("storage_retry_delay must be positive")
        if self.storage_persist_deadline <= 0:
            raise ValueError("storage_persist_deadline must be positive")
        if self.n_network_faults < 0:
            raise ValueError("n_network_faults must be non-negative")
        if (len(self.network_fault_mix) != 3
                or any(w < 0 for w in self.network_fault_mix)
                or sum(self.network_fault_mix) <= 0):
            raise ValueError("network_fault_mix must be 3 non-negative "
                             "weights with a positive sum")
        if min(self.link_down_duration, self.link_degraded_duration,
               self.switch_down_duration) <= 0:
            raise ValueError("network fault durations must be positive")
        if not 0.0 < self.link_degraded_factor < 1.0:
            raise ValueError("link_degraded_factor must be in (0, 1)")
        if self.degraded_detect_delay <= 0:
            raise ValueError("degraded_detect_delay must be positive")
        if not 0.0 < self.network_min_factor <= 1.0:
            raise ValueError("network_min_factor must be in (0, 1]")
        if self.nodes_per_leaf <= 0:
            raise ValueError("nodes_per_leaf must be positive")
        if self.leaves_per_pod <= 0:
            raise ValueError("leaves_per_pod must be positive")
        if self.n_pod_faults < 0:
            raise ValueError("n_pod_faults must be non-negative")
        if (len(self.pod_fault_mix) != 2
                or any(w < 0 for w in self.pod_fault_mix)
                or sum(self.pod_fault_mix) <= 0):
            raise ValueError("pod_fault_mix must be 2 non-negative "
                             "weights with a positive sum")
        if min(self.pod_link_down_duration,
               self.pod_link_degraded_duration) <= 0:
            raise ValueError("pod fault durations must be positive")
        if not 0.0 < self.pod_link_degraded_factor < 1.0:
            raise ValueError("pod_link_degraded_factor must be in (0, 1)")
        if self.n_partition_faults < 0:
            raise ValueError("n_partition_faults must be non-negative")
        if self.partition_duration <= 0:
            raise ValueError("partition_duration must be positive")
        if self.partition_size < 2:
            raise ValueError("partition_size must be >= 2 (one link is "
                             "not a partition)")
        if not (0.0 < self.partition_low_factor
                < self.partition_high_factor < 1.0):
            raise ValueError("need 0 < partition_low_factor < "
                             "partition_high_factor < 1")
        if self.partition_low_factor >= self.network_min_factor:
            raise ValueError("partition_low_factor must sit below "
                             "network_min_factor or the partition "
                             "never fails a probe")
        if self.partition_high_factor < self.network_min_factor:
            raise ValueError("partition_high_factor must sit at or "
                             "above network_min_factor — the asymmetry "
                             "is the point")
        if self.n_straggler_faults < 0:
            raise ValueError("n_straggler_faults must be non-negative")
        if not 0.0 <= self.straggler_silent_fraction <= 1.0:
            raise ValueError("straggler_silent_fraction must be in "
                             "[0, 1]")
        if self.straggler_ramp_interval <= 0:
            raise ValueError("straggler_ramp_interval must be positive")
        if not (0.0 < self.straggler_decay < 1.0
                and 0.0 < self.silent_decay < 1.0):
            raise ValueError("straggler decays must be in (0, 1)")
        if not (0.0 < self.straggler_floor < 1.0
                and 0.0 < self.silent_floor < 1.0):
            raise ValueError("straggler floors must be in (0, 1)")
        if self.straggler_probe_interval <= 0:
            raise ValueError("straggler_probe_interval must be positive")
        if self.straggler_detect_threshold <= 1.0:
            raise ValueError("straggler_detect_threshold must be > 1")
        if self.straggler_detect_patience < 1:
            raise ValueError("straggler_detect_patience must be >= 1")
        if not 0.0 < self.straggler_conviction_factor <= 1.0:
            raise ValueError("straggler_conviction_factor must be in "
                             "(0, 1]")
        if self.straggler_detect_bound <= 0:
            raise ValueError("straggler_detect_bound must be positive")
        if self.n_power_faults < 0:
            raise ValueError("n_power_faults must be non-negative")
        if self.power_cap_duration <= 0:
            raise ValueError("power_cap_duration must be positive")
        if self.power_cap_watts <= 0:
            raise ValueError("power_cap_watts must be positive")
        if self.hot_spares < 0:
            raise ValueError("hot_spares must be non-negative")
        if self.spare_swap_delay < 0:
            raise ValueError("spare_swap_delay must be non-negative")
        if self.pretrain_gpus % GPUS_PER_NODE:
            raise ValueError("pretrain_gpus must be a multiple of 8")
        if self.scheduler_gpus % GPUS_PER_NODE:
            raise ValueError("scheduler_gpus must be a multiple of 8")
        needed = (self.pretrain_gpus + self.scheduler_gpus) // GPUS_PER_NODE
        if self.n_nodes < needed + 1:
            raise ValueError(
                f"n_nodes={self.n_nodes} leaves no spare: the gang and "
                f"pool alone need {needed} nodes")
        if self.hot_spares > self.n_nodes - needed:
            raise ValueError(
                f"hot_spares={self.hot_spares} exceeds the "
                f"{self.n_nodes - needed} spare-role node(s)")

    # -- derived shape -----------------------------------------------------

    @property
    def gang_nodes(self) -> int:
        return self.pretrain_gpus // GPUS_PER_NODE

    @property
    def pool_nodes(self) -> int:
        return self.scheduler_gpus // GPUS_PER_NODE

    @property
    def spare_nodes(self) -> int:
        return self.n_nodes - self.gang_nodes - self.pool_nodes

    # -- deterministic sampling --------------------------------------------

    def build_storage_faults(self) -> list[InjectedFault]:
        """The resolved storage-fault schedule, sorted by time.

        Sampled from its own registered stream (``storage``) so adding
        storage faults never perturbs the node-fault or background-job
        streams.
        """
        if self.n_storage_faults == 0:
            return []
        rng = stream_rng(self.seed, "storage")
        weights = np.array(self.storage_fault_mix, dtype=float)
        weights /= weights.sum()
        durations = {
            "storage_outage": self.storage_outage_duration,
            "storage_slowdown": self.storage_slowdown_duration,
            "ckpt_corruption": self.ckpt_corruption_duration,
        }
        times = np.sort(rng.uniform(0.05 * self.duration,
                                    0.8 * self.duration,
                                    self.n_storage_faults))
        faults = []
        for index, time in enumerate(times):
            kind = STORAGE_FAULT_KINDS[
                int(rng.choice(len(STORAGE_FAULT_KINDS), p=weights))]
            faults.append(InjectedFault(
                float(time), kind, STORAGE_CHAOS_REASON, "storage", 0,
                self.seed * 1000 + 500 + index,
                duration=durations[kind]))
        return faults

    def build_network_faults(self) -> list[InjectedFault]:
        """The resolved network-fault schedule, sorted by time.

        Sampled from its own registered stream (``network``) so adding
        network faults never perturbs the node-fault, background-job,
        or storage streams — chaos goldens without network faults stay
        byte-identical.  Windows close by 80% of the horizon plus the
        longest duration, so end-of-run checks can require the fabric
        to have healed.
        """
        if self.n_network_faults == 0:
            return []
        rng = stream_rng(self.seed, "network")
        weights = np.array(self.network_fault_mix, dtype=float)
        weights /= weights.sum()
        durations = {
            "link_down": self.link_down_duration,
            "link_degraded": self.link_degraded_duration,
            "switch_down": self.switch_down_duration,
        }
        leaf_count = -(-self.n_nodes // self.nodes_per_leaf)  # ceil
        gang_leaves = -(-self.gang_nodes // self.nodes_per_leaf)
        node_hi = (self.gang_nodes if self.network_target_gang
                   else self.n_nodes)
        leaf_hi = (max(gang_leaves, 1) if self.network_target_gang
                   else leaf_count)
        times = np.sort(rng.uniform(0.05 * self.duration,
                                    0.8 * self.duration,
                                    self.n_network_faults))
        faults = []
        for index, time in enumerate(times):
            kind = NETWORK_FAULT_KINDS[
                int(rng.choice(len(NETWORK_FAULT_KINDS), p=weights))]
            node = int(rng.integers(0, node_hi))
            leaf = int(rng.integers(0, leaf_hi))
            if kind == "switch_down" or float(rng.uniform()) >= 0.5:
                link = leaf_link(leaf)
            else:
                link = nic_link(node)
            faults.append(InjectedFault(
                float(time), kind, NETWORK_CHAOS_REASONS[kind],
                "network", node, self.seed * 1000 + 700 + index,
                duration=durations[kind], link=link))
        return faults

    def build_pod_faults(self) -> list[InjectedFault]:
        """The resolved pod (core-tier) fault schedule, sorted by time.

        Sampled from its own registered stream (``pod``): adding pod
        faults never perturbs any other stream.  Windows close by 80%
        of the horizon plus the duration so the fabric heals before
        end-of-run checks.  Pod uplinks only matter to gangs that
        cross pods — pair these with a small ``leaves_per_pod``.
        """
        if self.n_pod_faults == 0:
            return []
        rng = stream_rng(self.seed, "pod")
        weights = np.array(self.pod_fault_mix, dtype=float)
        weights /= weights.sum()
        durations = {
            "pod_link_down": self.pod_link_down_duration,
            "pod_link_degraded": self.pod_link_degraded_duration,
        }
        leaf_count = -(-self.n_nodes // self.nodes_per_leaf)  # ceil
        pod_count = -(-leaf_count // self.leaves_per_pod)
        gang_leaves = -(-self.gang_nodes // self.nodes_per_leaf)
        gang_pods = -(-gang_leaves // self.leaves_per_pod)
        pod_hi = (max(gang_pods, 1) if self.network_target_gang
                  else pod_count)
        times = np.sort(rng.uniform(0.05 * self.duration,
                                    0.8 * self.duration,
                                    self.n_pod_faults))
        faults = []
        for index, time in enumerate(times):
            kind = POD_FAULT_KINDS[
                int(rng.choice(len(POD_FAULT_KINDS), p=weights))]
            pod = int(rng.integers(0, pod_hi))
            faults.append(InjectedFault(
                float(time), kind, NETWORK_CHAOS_REASONS[kind],
                "network", 0, self.seed * 1000 + 800 + index,
                duration=durations[kind], link=pod_link(pod)))
        return faults

    def build_partition_faults(self) -> list[InjectedFault]:
        """The resolved partial-partition schedule, sorted by time.

        Sampled from its own registered stream (``partition``).  Each
        fault degrades a *set* of gang NICs asymmetrically: even
        positions drop below the NCCL pass threshold, odd positions
        stay above it — some pairs keep passing probes, so
        localization must convict exactly the sick subset.
        """
        if self.n_partition_faults == 0:
            return []
        rng = stream_rng(self.seed, "partition")
        node_hi = (self.gang_nodes if self.network_target_gang
                   else self.n_nodes)
        size = min(self.partition_size, node_hi)
        times = np.sort(rng.uniform(0.05 * self.duration,
                                    0.8 * self.duration,
                                    self.n_partition_faults))
        faults = []
        for index, time in enumerate(times):
            members = sorted(int(node) for node in rng.choice(
                node_hi, size=size, replace=False))
            links = tuple(nic_link(node) for node in members)
            factors = tuple(
                self.partition_low_factor if position % 2 == 0
                else self.partition_high_factor
                for position in range(size))
            faults.append(InjectedFault(
                float(time), "partial_partition",
                NETWORK_CHAOS_REASONS["partial_partition"], "network",
                members[0], self.seed * 1000 + 850 + index,
                duration=self.partition_duration, link=links[0],
                links=links, link_factors=factors))
        return faults

    def build_straggler_faults(self) -> list[InjectedFault]:
        """The resolved straggler schedule, sorted by time.

        Sampled from its own registered stream (``straggler``).
        Victims are
        distinct gang nodes when possible.  Injection times stop at
        60% of the horizon so detection (or the silent-waste flag) has
        room to play out.  No reason, no duration: a straggler emits
        no failure log and decays until convicted — detection is the
        monitoring plane's problem, not the injector's.
        """
        if self.n_straggler_faults == 0:
            return []
        rng = stream_rng(self.seed, "straggler")
        times = np.sort(rng.uniform(0.05 * self.duration,
                                    0.6 * self.duration,
                                    self.n_straggler_faults))
        if self.n_straggler_faults <= self.gang_nodes:
            victims = [int(node) for node in rng.choice(
                self.gang_nodes, size=self.n_straggler_faults,
                replace=False)]
        else:
            victims = [int(rng.integers(0, self.gang_nodes))
                       for _ in range(self.n_straggler_faults)]
        faults = []
        for index, time in enumerate(times):
            silent = float(rng.uniform()) < self.straggler_silent_fraction
            kind = "silent_degrader" if silent else "straggler"
            faults.append(InjectedFault(
                float(time), kind, None, "pretrain", victims[index],
                self.seed * 1000 + 900 + index))
        return faults

    def build_power_faults(self) -> list[InjectedFault]:
        """The resolved power-capping schedule, sorted by time.

        Sampled from its own registered stream (``power``).  The fleet
        step-rate factor is resolved *here*, at build time: synthetic
        pretraining-profile DCGM samples are pushed through
        ``GpuPowerModel`` and ``TemperatureModel``, and the resulting
        mean draw through the ``PowerCappingModel`` curve — the
        monitor models feeding training time, with the harness still
        sampling-free at runtime.
        """
        if self.n_power_faults == 0:
            return []
        rng = stream_rng(self.seed, "power")
        power_model = GpuPowerModel()
        thermal = TemperatureModel()
        capping = PowerCappingModel(cap_watts=self.power_cap_watts)
        times = np.sort(rng.uniform(0.05 * self.duration,
                                    0.8 * self.duration,
                                    self.n_power_faults))
        faults = []
        for index, time in enumerate(times):
            draws = []
            for _ in range(max(self.pretrain_gpus, 1)):
                # a loaded pretraining GPU, mirroring the DCGM
                # pretrain profile (sm ~ N(0.46, 0.12), tc ≈ 0.75·sm)
                sm = float(np.clip(rng.normal(0.46, 0.12), 0.02, 1.0))
                tc = float(np.clip(
                    sm * 0.75 * rng.uniform(0.85, 1.1), 0.0, 1.0))
                sample = GpuSample(
                    gpu_utilization=0.98, sm_activity=sm,
                    tc_activity=tc, memory_used_fraction=0.8,
                    job_type=JobType.PRETRAIN)
                draws.append(power_model.draw(sample, rng))
            mean_draw = float(np.mean(draws))
            core = thermal.core_temperature(mean_draw, rng)
            faults.append(InjectedFault(
                float(time), "power_cap", None, "power", 0,
                self.seed * 1000 + 950 + index,
                duration=self.power_cap_duration,
                factor=capping.step_factor(mean_draw, core)))
        return faults

    def build_faults(self) -> list[InjectedFault]:
        """The resolved fault schedule, sorted by time."""
        if self.faults:
            return sorted(self.faults, key=lambda f: (f.time, f.log_seed))
        rng = stream_rng(self.seed, "node_faults")
        specs = [spec for spec in TAXONOMY
                 if self.category_filter is None
                 or spec.category.value == self.category_filter]
        weights = np.array([spec.count for spec in specs], dtype=float)
        weights /= weights.sum()
        times = np.sort(rng.uniform(0.05 * self.duration,
                                    0.95 * self.duration, self.n_faults))
        faults: list[InjectedFault] = []
        for index, time in enumerate(times):
            roll = float(rng.uniform())
            node = (self.pin_node if self.pin_node is not None
                    else int(rng.integers(0, self.n_nodes)))
            log_seed = self.seed * 1000 + index
            if roll < self.loss_spike_fraction:
                faults.append(InjectedFault(float(time), "loss_spike",
                                            None, "pretrain", node,
                                            log_seed))
                continue
            if roll < self.loss_spike_fraction + self.hang_fraction:
                faults.append(InjectedFault(float(time), "hang", None,
                                            "pretrain", node, log_seed))
                continue
            spec = specs[int(rng.choice(len(specs), p=weights))]
            if spec.category is FailureCategory.SCRIPT:
                target = "scheduler"
            else:
                target = ("pretrain"
                          if float(rng.uniform())
                          < self.pretrain_target_fraction
                          else "scheduler")
            faults.append(InjectedFault(float(time), "failure",
                                        spec.reason, target, node,
                                        log_seed))
        faults.extend(self.build_storage_faults())
        faults.extend(self.build_network_faults())
        faults.extend(self.build_pod_faults())
        faults.extend(self.build_partition_faults())
        faults.extend(self.build_straggler_faults())
        faults.extend(self.build_power_faults())
        return sorted(faults, key=lambda f: (f.time, f.log_seed))

    def build_background_jobs(self) -> list[Job]:
        """Deterministic best-effort jobs for the scheduler pool."""
        rng = stream_rng(self.seed, "background_jobs")
        types = [JobType.EVALUATION, JobType.DEBUG, JobType.SFT,
                 JobType.OTHER]
        demands = [1, 2, 4, 8, 16]
        jobs = []
        for index in range(self.n_background_jobs):
            demand = demands[int(rng.integers(0, len(demands)))]
            demand = min(demand, self.scheduler_gpus)
            jobs.append(Job(
                job_id=f"bg-{index:04d}",
                cluster="chaos",
                job_type=types[int(rng.integers(0, len(types)))],
                submit_time=float(rng.uniform(0.0, 0.8 * self.duration)),
                duration=float(rng.exponential(2.0 * 3600.0)) + 60.0,
                gpu_demand=demand,
            ))
        return sorted(jobs, key=lambda job: (job.submit_time, job.job_id))

    def with_seed(self, seed: int) -> "ChaosScenario":
        """The same scenario under a different seed."""
        return replace(self, seed=seed)


#: Ready-made scenarios, smallest first.  "flaky-node" pins every fault
#: to one node so repeated convictions escalate it to FAULTY;
#: "infra-storm" draws exclusively from the infrastructure rows of
#: Table 3, the category behind 82% of failure GPU-time (§5.2).
BUNDLED_SCENARIOS: dict[str, ChaosScenario] = {
    "smoke": ChaosScenario(
        name="smoke", n_nodes=8, duration=6.0 * 3600.0, pretrain_gpus=16,
        scheduler_gpus=32, n_background_jobs=10, n_faults=4),
    "mixed": ChaosScenario(name="mixed"),
    "infra-storm": ChaosScenario(
        name="infra-storm", n_faults=12,
        category_filter="infrastructure", loss_spike_fraction=0.0,
        hang_fraction=0.1),
    "flaky-node": ChaosScenario(
        name="flaky-node", n_nodes=10, pretrain_gpus=32,
        scheduler_gpus=32, n_faults=6, pin_node=1,
        category_filter="infrastructure", loss_spike_fraction=0.0,
        hang_fraction=0.0, pretrain_target_fraction=1.0),
    # storage-storm drills the checkpoint path: long corruption windows
    # poison generations silently (forcing fallback restores when a node
    # fault later triggers recovery), while outage/slowdown windows
    # exercise the retry/deferral machinery.
    "storage-storm": ChaosScenario(
        name="storage-storm", n_nodes=8, duration=8.0 * 3600.0,
        pretrain_gpus=16, scheduler_gpus=32, n_background_jobs=10,
        n_faults=4, loss_spike_fraction=0.0, hang_fraction=0.0,
        category_filter="infrastructure",
        pretrain_target_fraction=1.0, n_storage_faults=5,
        storage_fault_mix=(0.25, 0.25, 0.5),
        ckpt_corruption_duration=3600.0),
    # network-storm drills the fabric path: three-node leaf domains make
    # the 4-node gang span two leaves, so downed/degraded uplinks and
    # NICs interrupt it, the localization procedure convicts segments
    # (a leaf needs two healthy members for an uplink conviction, hence
    # the wider domains), and placement migrates the gang around the
    # cordoned fabric.
    "network-storm": ChaosScenario(
        name="network-storm", seed=8, n_nodes=12, duration=8.0 * 3600.0,
        pretrain_gpus=32, scheduler_gpus=32, n_background_jobs=10,
        n_faults=2, loss_spike_fraction=0.0, hang_fraction=0.0,
        category_filter="infrastructure",
        pretrain_target_fraction=1.0, n_network_faults=5,
        network_fault_mix=(0.5, 0.3, 0.2), nodes_per_leaf=3),
    # straggler-storm drills the silent failure domains: three gang
    # nodes slowly decay (two loud stragglers detected from the
    # step-time series, one silent degrader whose floor sits above the
    # DCGM conviction bar so it is never caught — only flagged as
    # silent waste at the horizon), a power-cap window stretches the
    # whole fleet, and convicted nodes swap against a two-node
    # hot-spare pool until it runs dry.
    "straggler-storm": ChaosScenario(
        name="straggler-storm", seed=11, n_nodes=10,
        duration=8.0 * 3600.0, pretrain_gpus=32, scheduler_gpus=24,
        n_background_jobs=8, n_faults=2, loss_spike_fraction=0.0,
        hang_fraction=0.0, category_filter="infrastructure",
        pretrain_target_fraction=1.0, n_straggler_faults=3,
        straggler_silent_fraction=0.45, silent_floor=0.96,
        n_power_faults=1, hot_spares=2),
    # partition-storm drills the core tier: two-leaf pods make the
    # six-node gang span two pods, so pod-uplink faults interrupt it
    # and the pod cycle sweep localizes them; partial partitions
    # degrade asymmetric NIC sets the four-round protocol must convict
    # as a set.
    "partition-storm": ChaosScenario(
        name="partition-storm", seed=4, n_nodes=14,
        duration=8.0 * 3600.0, pretrain_gpus=48, scheduler_gpus=32,
        n_background_jobs=8, n_faults=1, loss_spike_fraction=0.0,
        hang_fraction=0.0, category_filter="infrastructure",
        pretrain_target_fraction=1.0, nodes_per_leaf=2,
        leaves_per_pod=2, n_pod_faults=2, n_partition_faults=2),
}
