"""Benchmark-dataset catalog with runtime priors.

The paper's evaluation rounds cover ~60 datasets per checkpoint (§6.2 uses
63).  The trial coordinator's elastic scheduling leans on "quite robust"
prior knowledge of per-dataset runtimes; this catalog encodes those priors
for a 7B model on one A100:

* ``inference_seconds`` — GPU generation/scoring time;
* ``preprocess_seconds`` — tokenization etc. (cacheable);
* ``metric_cpu_seconds`` — post-inference metric computation; near zero
  for log-likelihood benchmarks, tens of minutes for code-correctness
  suites (HumanEval/MBPP) and LLM-judged chat (§4.2);
* ``splittable`` — large datasets can be partitioned across trials.

Runtimes scale roughly linearly with model size; callers pass a
``model_scale`` factor for larger checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EvalDataset:
    """One benchmark dataset and its runtime priors (7B, one A100)."""

    name: str
    num_samples: int
    inference_seconds: float
    preprocess_seconds: float
    metric_cpu_seconds: float
    splittable: bool = True

    def __post_init__(self) -> None:
        if self.inference_seconds < 0 or self.metric_cpu_seconds < 0:
            raise ValueError("runtimes must be non-negative")

    @property
    def gpu_seconds(self) -> float:
        return self.inference_seconds

    def scaled(self, model_scale: float) -> "EvalDataset":
        """Priors for a model ``model_scale``x the 7B reference."""
        if model_scale <= 0:
            raise ValueError("model_scale must be positive")
        return replace(
            self,
            inference_seconds=self.inference_seconds * model_scale,
            preprocess_seconds=self.preprocess_seconds,
            metric_cpu_seconds=self.metric_cpu_seconds,
        )

    def split(self, parts: int) -> list["EvalDataset"]:
        """Partition into ``parts`` shards (prior-based decomposition)."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        if parts == 1 or not self.splittable:
            return [self]
        shards = []
        for index in range(parts):
            shards.append(EvalDataset(
                name=f"{self.name}#{index}",
                num_samples=max(1, self.num_samples // parts),
                inference_seconds=self.inference_seconds / parts,
                preprocess_seconds=self.preprocess_seconds,
                metric_cpu_seconds=self.metric_cpu_seconds / parts,
                splittable=False,
            ))
        return shards


def _d(name: str, samples: int, infer: float, prep: float,
       metric: float, splittable: bool = True) -> EvalDataset:
    return EvalDataset(name, samples, infer, prep, metric, splittable)


#: The 63-dataset evaluation round of §6.2.  Heavy-metric entries lead:
#: code-correctness suites and LLM-judged conversation take up to 30 CPU
#: minutes while the GPU would sit idle (Fig. 13).
DATASET_CATALOG: list[EvalDataset] = [
    _d("humaneval", 164, 113.0, 12.0, 1140.0),
    _d("mbpp", 500, 260.0, 15.0, 1500.0),
    _d("chatbot-arena", 80, 240.0, 8.0, 1800.0, splittable=False),
    _d("mtbench", 80, 260.0, 8.0, 1500.0, splittable=False),
    _d("mmlu", 14042, 900.0, 60.0, 20.0),
    _d("cmmlu", 11528, 760.0, 55.0, 18.0),
    _d("ceval", 13948, 820.0, 58.0, 18.0),
    _d("agieval", 8062, 660.0, 40.0, 15.0),
    _d("bbh", 6511, 780.0, 35.0, 30.0),
    _d("gsm8k", 1319, 620.0, 20.0, 45.0),
    _d("math", 5000, 840.0, 30.0, 60.0),
    _d("theoremqa", 800, 300.0, 12.0, 25.0),
    _d("arc-easy", 2376, 140.0, 12.0, 5.0),
    _d("arc-challenge", 1172, 110.0, 10.0, 5.0),
    _d("hellaswag", 10042, 420.0, 35.0, 8.0),
    _d("winogrande", 1267, 90.0, 9.0, 4.0),
    _d("boolq", 3270, 160.0, 14.0, 5.0),
    _d("piqa", 1838, 110.0, 10.0, 4.0),
    _d("siqa", 1954, 115.0, 10.0, 4.0),
    _d("openbookqa", 500, 60.0, 6.0, 3.0),
    _d("commonsenseqa", 1221, 95.0, 9.0, 4.0),
    _d("strategyqa", 2290, 150.0, 12.0, 6.0),
    _d("naturalquestions", 3610, 380.0, 25.0, 15.0),
    _d("triviaqa", 17944, 640.0, 50.0, 20.0),
    _d("squad", 10570, 360.0, 30.0, 12.0),
    _d("drop", 9536, 520.0, 28.0, 40.0),
    _d("quac", 7354, 420.0, 26.0, 15.0),
    _d("race-middle", 1436, 130.0, 11.0, 5.0),
    _d("race-high", 3498, 260.0, 18.0, 7.0),
    _d("xsum", 1000, 360.0, 14.0, 35.0),
    _d("cnn-dailymail", 1000, 420.0, 16.0, 35.0),
    _d("wmt22-en-zh", 2037, 330.0, 15.0, 25.0),
    _d("wmt22-zh-en", 1875, 310.0, 14.0, 25.0),
    _d("tydiqa", 5077, 330.0, 22.0, 12.0),
    _d("flores", 1012, 200.0, 10.0, 20.0),
    _d("lambada", 5153, 170.0, 16.0, 4.0),
    _d("storycloze", 1871, 95.0, 9.0, 4.0),
    _d("wic", 638, 50.0, 6.0, 3.0),
    _d("wsc", 104, 25.0, 4.0, 2.0),
    _d("copa", 100, 25.0, 4.0, 2.0),
    _d("cb", 56, 20.0, 3.0, 2.0),
    _d("rte", 277, 35.0, 5.0, 2.0),
    _d("anli", 3200, 170.0, 14.0, 6.0),
    _d("qqp", 4043, 190.0, 15.0, 6.0),
    _d("mnli", 9815, 380.0, 28.0, 9.0),
    _d("sst2", 872, 60.0, 7.0, 3.0),
    _d("cola", 1043, 65.0, 7.0, 3.0),
    _d("gaokao-bench", 2811, 420.0, 20.0, 30.0),
    _d("clue-c3", 1825, 140.0, 12.0, 5.0),
    _d("clue-cmrc", 3219, 230.0, 16.0, 10.0),
    _d("xtreme", 4500, 300.0, 22.0, 12.0),
    _d("toxigen", 940, 90.0, 8.0, 20.0),
    _d("truthfulqa", 817, 120.0, 9.0, 30.0),
    _d("crows-pairs", 1508, 80.0, 8.0, 8.0),
    _d("bold", 7200, 280.0, 20.0, 25.0),
    _d("realtoxicity", 10000, 420.0, 30.0, 60.0),
    _d("tnews", 10000, 310.0, 24.0, 8.0),
    _d("ocnli", 3000, 150.0, 13.0, 5.0),
    _d("afqmc", 4316, 180.0, 14.0, 5.0),
    _d("eprstmt", 1000, 60.0, 7.0, 3.0),
    _d("chid", 3000, 220.0, 15.0, 8.0),
    _d("cluewsc", 1000, 70.0, 7.0, 3.0),
    _d("bustm", 2000, 110.0, 10.0, 4.0),
]


def standard_catalog(model_scale: float = 1.0) -> list[EvalDataset]:
    """The 63-dataset round, scaled to a model size."""
    return [dataset.scaled(model_scale) for dataset in DATASET_CATALOG]


def dataset_by_name(name: str) -> EvalDataset:
    """Catalog lookup; raises KeyError for unknown names."""
    for dataset in DATASET_CATALOG:
        if dataset.name == name:
            return dataset
    raise KeyError(name)
