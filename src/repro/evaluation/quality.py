"""Model-quality curves and checkpoint selection (§6.2 motivation).

Evaluation rounds exist so developers can "track the progress of model
training and identify the optimal model checkpoint".  This module gives
the evaluation substrate something to measure: per-benchmark quality
curves that rise with training progress (power-law, like the loss
curve's mirror), saturate at a per-dataset ceiling, regress when the
loss spikes, and carry per-trial measurement noise.

``select_best_checkpoint`` implements the decision the coordinator's
timely feedback enables — and quantifies the cost of *delayed* feedback
(§1's "delayed feedback on model performance" challenge).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.datasets import EvalDataset


@dataclass(frozen=True)
class QualityCurveConfig:
    """Score trajectory parameters for one benchmark."""

    floor: float          # untrained-model score (chance level)
    ceiling: float        # converged score
    #: steps to reach half the floor->ceiling gap
    half_life_steps: float
    noise_sigma: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.floor <= self.ceiling <= 1.0:
            raise ValueError("need 0 <= floor <= ceiling <= 1")
        if self.half_life_steps <= 0:
            raise ValueError("half_life_steps must be positive")

    def expected_score(self, step: float) -> float:
        """Noise-free score at a training step."""
        progress = 1.0 - 2.0 ** (-step / self.half_life_steps)
        return self.floor + (self.ceiling - self.floor) * progress


def default_curve_for(dataset: EvalDataset, seed: int = 0
                      ) -> QualityCurveConfig:
    """A plausible curve derived deterministically from the dataset.

    Harder benchmarks (long inference, heavy metric) get lower ceilings
    and longer half-lives — GSM8K-style tasks emerge late; multiple
    choice saturates early.
    """
    # crc32, not hash(): builtin string hashing is randomized per
    # process, which would give every run a different quality curve
    rng = np.random.default_rng(
        [zlib.crc32(dataset.name.encode("utf-8")), seed & 0xFFFFFFFF])
    difficulty = min(1.0, (dataset.inference_seconds / 900.0
                           + dataset.metric_cpu_seconds / 1800.0) / 2.0)
    floor = float(rng.uniform(0.02, 0.30) * (1.0 - 0.5 * difficulty))
    ceiling = float(np.clip(0.92 - 0.45 * difficulty
                            + rng.uniform(-0.05, 0.05), floor + 0.05,
                            0.97))
    half_life = float(5000.0 + 40_000.0 * difficulty
                      * rng.uniform(0.6, 1.4))
    return QualityCurveConfig(floor=floor, ceiling=ceiling,
                              half_life_steps=half_life)


@dataclass
class CheckpointScore:
    """One evaluation round's outcome for one checkpoint."""

    step: int
    scores: dict[str, float] = field(default_factory=dict)

    def mean_score(self) -> float:
        """Mean score across the round's datasets."""
        if not self.scores:
            raise ValueError("no scores recorded")
        return float(np.mean(list(self.scores.values())))


class QualityModel:
    """Scores checkpoints across a benchmark suite."""

    def __init__(self, datasets: list[EvalDataset], seed: int = 0,
                 curves: dict[str, QualityCurveConfig] | None = None
                 ) -> None:
        if not datasets:
            raise ValueError("need at least one dataset")
        self.datasets = datasets
        self.rng = np.random.default_rng(seed)
        self.curves = curves or {dataset.name:
                                 default_curve_for(dataset, seed)
                                 for dataset in datasets}
        #: regressions caused by unrecovered loss spikes: step -> penalty
        self._regressions: list[tuple[int, float]] = []

    def add_regression(self, step: int, penalty: float = 0.05) -> None:
        """Record a quality regression from ``step`` onward (§5.3 loss
        spikes degrade model quality until rolled back)."""
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self._regressions.append((step, penalty))

    def _penalty_at(self, step: int) -> float:
        return sum(penalty for start, penalty in self._regressions
                   if step >= start)

    def evaluate_checkpoint(self, step: int) -> CheckpointScore:
        """One full evaluation round at ``step`` (with trial noise)."""
        result = CheckpointScore(step=step)
        penalty = self._penalty_at(step)
        for dataset in self.datasets:
            curve = self.curves[dataset.name]
            score = (curve.expected_score(step) - penalty
                     + float(self.rng.normal(0.0, curve.noise_sigma)))
            result.scores[dataset.name] = float(np.clip(score, 0.0, 1.0))
        return result

    def evaluate_schedule(self, steps: list[int]) -> list[CheckpointScore]:
        """Evaluate every checkpoint step, in order."""
        return [self.evaluate_checkpoint(step) for step in sorted(steps)]


def select_best_checkpoint(scores: list[CheckpointScore]
                           ) -> CheckpointScore:
    """The coordinator's end product: the best checkpoint so far."""
    if not scores:
        raise ValueError("no checkpoints scored")
    return max(scores, key=lambda score: score.mean_score())


def feedback_delay_cost(model: QualityModel, checkpoint_steps: list[int],
                        regression_step: int,
                        eval_delay_checkpoints: int,
                        checkpoint_interval_steps: int) -> dict:
    """Quantify §1's 'delayed feedback' challenge.

    A quality regression at ``regression_step`` is only *noticed* when
    its checkpoint's evaluation completes; with a backlogged evaluation
    queue the answer arrives ``eval_delay_checkpoints`` rounds late, and
    every step trained meanwhile is wasted (it must be rolled back).
    """
    if eval_delay_checkpoints < 0:
        raise ValueError("delay must be non-negative")
    model.add_regression(regression_step)
    first_bad = next((step for step in sorted(checkpoint_steps)
                      if step >= regression_step), None)
    if first_bad is None:
        return {"wasted_steps": 0, "detected_at_step": None}
    detected = first_bad + (eval_delay_checkpoints
                            * checkpoint_interval_steps)
    return {
        "regression_step": regression_step,
        "first_affected_checkpoint": first_bad,
        "detected_at_step": detected,
        "wasted_steps": detected - regression_step,
    }
