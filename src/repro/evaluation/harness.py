"""Evaluation-trial execution model (§4.2, Fig. 13).

An evaluation trial passes through four stages; only one occupies the GPU:

1. model loading from remote storage (GPU idle),
2. data preprocessing / tokenization (GPU idle),
3. inference and generation (GPU busy),
4. metric computation and verification (GPU idle — e.g. running the
   synthesized programs of HumanEval).

The paper's HumanEval profile: >1 minute before inference starts (29.5% of
the job), a 42-second idle tail for correctness tests (19.0%), and only
about half the walltime doing GPU work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.evaluation.datasets import EvalDataset, dataset_by_name
from repro.training.profiler import UtilizationTimeline

GB = 10 ** 9


class EvalStage(Enum):
    """The four stages of an evaluation trial (Fig. 13)."""
    MODEL_LOAD = "model_load"
    PREPROCESS = "preprocess"
    INFERENCE = "inference"
    METRIC = "metric"


#: GPU SM activity per stage — inference keeps the SMs busy in bursts;
#: everything else leaves the GPU allocated-but-idle.
_STAGE_SM = {
    EvalStage.MODEL_LOAD: 0.01,
    EvalStage.PREPROCESS: 0.02,
    EvalStage.INFERENCE: 0.62,
    EvalStage.METRIC: 0.01,
}


@dataclass(frozen=True)
class StageSegment:
    """One contiguous stage interval within a trial."""
    stage: EvalStage
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def gpu_busy(self) -> bool:
        return self.stage is EvalStage.INFERENCE


@dataclass
class TrialProfile:
    """The staged timeline of one evaluation trial."""

    segments: list[StageSegment] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(segment.duration for segment in self.segments)

    def stage_seconds(self, stage: EvalStage) -> float:
        """Total seconds spent in ``stage``."""
        return sum(segment.duration for segment in self.segments
                   if segment.stage is stage)

    def stage_fraction(self, stage: EvalStage) -> float:
        """Share of the trial spent in ``stage``."""
        total = self.total
        return self.stage_seconds(stage) / total if total else 0.0

    @property
    def gpu_busy_fraction(self) -> float:
        return self.stage_fraction(EvalStage.INFERENCE)

    def utilization_timeline(self, resolution: float = 1.0,
                             seed: int | None = 0) -> UtilizationTimeline:
        """DCGM-style SM trace of the trial (Fig. 13)."""
        total = self.total
        n = max(2, int(total / resolution))
        times = np.linspace(0.0, total, n)
        sm = np.zeros(n)
        rng = np.random.default_rng(seed) if seed is not None else None
        for i, t in enumerate(times):
            for segment in self.segments:
                if segment.start <= t <= segment.end:
                    level = _STAGE_SM[segment.stage]
                    if (segment.stage is EvalStage.INFERENCE
                            and rng is not None):
                        # generation is bursty: decode phases oscillate
                        level = float(np.clip(
                            level + 0.3 * np.sin(t * 2.1)
                            + rng.normal(0, 0.05), 0.05, 1.0))
                    sm[i] = level
                    break
        tc = sm * 0.6
        return UtilizationTimeline(times=times, sm=sm, tc=tc)


@dataclass
class EvalTrial:
    """One trial: a model checkpoint against one or more datasets."""

    datasets: list[EvalDataset]
    model_bytes: float = 14 * GB  # fp16 7B
    #: effective load rate from remote storage, bytes/s — includes
    #: contention and deserialization (Fig. 16 left shows ~0.2-2 GB/s)
    load_rate: float = 0.25 * GB
    #: preprocessing is skipped when tokenized data is cached (§4.2)
    preprocess_cached: bool = False
    #: model loading is skipped when a precursor job staged the model in
    #: node shared memory (§6.2); only a PCIe copy remains
    model_staged: bool = False
    pcie_rate: float = 20 * GB

    def __post_init__(self) -> None:
        if not self.datasets:
            raise ValueError("trial needs at least one dataset")
        if self.load_rate <= 0 or self.pcie_rate <= 0:
            raise ValueError("rates must be positive")

    # -- stage durations --------------------------------------------------

    def load_seconds(self) -> float:
        """Model-loading time (remote or staged path)."""
        if self.model_staged:
            return self.model_bytes / self.pcie_rate
        return self.model_bytes / self.load_rate

    def preprocess_seconds(self) -> float:
        """Tokenization time (tiny when cached)."""
        if self.preprocess_cached:
            return sum(d.preprocess_seconds for d in self.datasets) * 0.05
        return sum(d.preprocess_seconds for d in self.datasets)

    def inference_seconds(self) -> float:
        """GPU inference time across the trial's datasets."""
        return sum(d.inference_seconds for d in self.datasets)

    def metric_seconds(self) -> float:
        """CPU metric-computation time across the datasets."""
        return sum(d.metric_cpu_seconds for d in self.datasets)

    # -- profiles -----------------------------------------------------------

    def profile(self, decoupled_metric: bool = False) -> TrialProfile:
        """Stage timeline; with ``decoupled_metric`` the trial ends when
        inference does (metric runs as a separate CPU job, §6.2)."""
        profile = TrialProfile()
        cursor = 0.0
        stages = [
            (EvalStage.MODEL_LOAD, self.load_seconds()),
            (EvalStage.PREPROCESS, self.preprocess_seconds()),
            (EvalStage.INFERENCE, self.inference_seconds()),
        ]
        if not decoupled_metric:
            stages.append((EvalStage.METRIC, self.metric_seconds()))
        for stage, duration in stages:
            if duration <= 0:
                continue
            profile.segments.append(StageSegment(stage, cursor, duration))
            cursor += duration
        return profile

    def gpu_occupancy_seconds(self, decoupled_metric: bool = False
                              ) -> float:
        """How long the trial holds its GPU."""
        return self.profile(decoupled_metric).total


def humaneval_profile(model_scale: float = 1.0) -> TrialProfile:
    """The Fig. 13 reference trial: HumanEval on a 7B model.

    Calibrated so load+preprocess ≈ 29.5% and the metric tail ≈ 19.0% of
    the trial, with inference taking roughly half.
    """
    humaneval = dataset_by_name("humaneval").scaled(model_scale)
    # Fig. 13's trial runs the correctness tests inline but they overlap
    # the tail only (42 s of exposed idle).
    trial = EvalTrial(datasets=[humaneval], load_rate=0.26 * GB)
    profile = TrialProfile()
    load = trial.load_seconds()
    preprocess = humaneval.preprocess_seconds
    inference = humaneval.inference_seconds
    exposed_metric = 42.0 * model_scale
    cursor = 0.0
    for stage, duration in [(EvalStage.MODEL_LOAD, load),
                            (EvalStage.PREPROCESS, preprocess),
                            (EvalStage.INFERENCE, inference),
                            (EvalStage.METRIC, exposed_metric)]:
        profile.segments.append(StageSegment(stage, cursor, duration))
        cursor += duration
    return profile
