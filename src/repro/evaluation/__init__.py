"""Evaluation workload substrate (§4.2).

A catalog of benchmark datasets (with the runtime priors §6.2's elastic
scheduler exploits) and a trial execution model decomposing an evaluation
job into its stages: model loading, data preprocessing, GPU inference,
and CPU metric computation.
"""

from repro.evaluation.datasets import (EvalDataset, DATASET_CATALOG,
                                       standard_catalog, dataset_by_name)
from repro.evaluation.harness import (EvalStage, StageSegment, EvalTrial,
                                      TrialProfile, humaneval_profile)
from repro.evaluation.quality import (QualityModel, QualityCurveConfig,
                                      CheckpointScore,
                                      select_best_checkpoint,
                                      feedback_delay_cost)

__all__ = [
    "EvalDataset",
    "DATASET_CATALOG",
    "standard_catalog",
    "dataset_by_name",
    "EvalStage",
    "StageSegment",
    "EvalTrial",
    "TrialProfile",
    "humaneval_profile",
    "QualityModel",
    "QualityCurveConfig",
    "CheckpointScore",
    "select_best_checkpoint",
    "feedback_delay_cost",
]
