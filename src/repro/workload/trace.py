"""Trace container and serialization.

A :class:`Trace` holds the job log of one cluster over the study window and
offers the aggregations the analysis layer needs: per-type slices, duration
and GPU-time vectors, and CSV/JSONL round-tripping (the public AcmeTrace
release ships CSV job logs; we mirror that format).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.scheduler.job import FinalStatus, Job, JobType


class Trace:
    """An ordered collection of jobs from one cluster."""

    def __init__(self, cluster: str, jobs: Iterable[Job]) -> None:
        self.cluster = cluster
        self.jobs = sorted(jobs, key=lambda job: job.submit_time)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    # -- slices -----------------------------------------------------------

    def gpu_jobs(self) -> list[Job]:
        """Jobs that request at least one GPU."""
        return [job for job in self.jobs if job.is_gpu_job]

    def cpu_jobs(self) -> list[Job]:
        """CPU-only jobs."""
        return [job for job in self.jobs if not job.is_gpu_job]

    def of_type(self, job_type: JobType) -> list[Job]:
        """Jobs of one workload type."""
        return [job for job in self.jobs if job.job_type is job_type]

    def filter(self, predicate: Callable[[Job], bool]) -> "Trace":
        """A new Trace with only the jobs matching ``predicate``."""
        return Trace(self.cluster,
                     [job for job in self.jobs if predicate(job)])

    # -- vectors ------------------------------------------------------------

    def durations(self, job_type: JobType | None = None) -> np.ndarray:
        """Job durations (optionally one type), seconds."""
        jobs = self.of_type(job_type) if job_type else self.gpu_jobs()
        return np.array([job.duration for job in jobs], dtype=float)

    def gpu_demands(self, job_type: JobType | None = None) -> np.ndarray:
        """Requested GPUs per job."""
        jobs = self.of_type(job_type) if job_type else self.gpu_jobs()
        return np.array([job.gpu_demand for job in jobs], dtype=float)

    def gpu_times(self, job_type: JobType | None = None) -> np.ndarray:
        """GPU time (demand x duration) per job."""
        jobs = self.of_type(job_type) if job_type else self.gpu_jobs()
        return np.array([job.gpu_time for job in jobs], dtype=float)

    def utilizations(self) -> np.ndarray:
        """Per-job mean GPU utilization."""
        return np.array([job.gpu_utilization for job in self.gpu_jobs()],
                        dtype=float)

    def queueing_delays(self, job_type: JobType | None = None) -> np.ndarray:
        """Submit-to-start delays of started jobs."""
        jobs = self.of_type(job_type) if job_type else self.gpu_jobs()
        return np.array([job.queueing_delay for job in jobs
                         if job.start_time is not None], dtype=float)

    # -- aggregates -----------------------------------------------------------

    def count_share_by_type(self) -> dict[JobType, float]:
        """Each type's share of the GPU-job count (Fig. 4a/c)."""
        jobs = self.gpu_jobs()
        if not jobs:
            return {}
        shares: dict[JobType, float] = {}
        for job in jobs:
            shares[job.job_type] = shares.get(job.job_type, 0.0) + 1
        return {k: v / len(jobs) for k, v in shares.items()}

    def gpu_time_share_by_type(self) -> dict[JobType, float]:
        """Each type's share of total GPU time (Fig. 4b/d)."""
        jobs = self.gpu_jobs()
        total = sum(job.gpu_time for job in jobs)
        if total == 0:
            return {}
        shares: dict[JobType, float] = {}
        for job in jobs:
            shares[job.job_type] = (shares.get(job.job_type, 0.0)
                                    + job.gpu_time)
        return {k: v / total for k, v in shares.items()}

    def status_counts(self) -> dict[FinalStatus, int]:
        """Job counts per terminal status (Fig. 17a)."""
        counts: dict[FinalStatus, int] = {}
        for job in self.gpu_jobs():
            counts[job.final_status] = counts.get(job.final_status, 0) + 1
        return counts

    def status_gpu_time(self) -> dict[FinalStatus, float]:
        """GPU time per terminal status (Fig. 17b)."""
        totals: dict[FinalStatus, float] = {}
        for job in self.gpu_jobs():
            totals[job.final_status] = (totals.get(job.final_status, 0.0)
                                        + job.gpu_time)
        return totals

    def mean_gpu_demand(self) -> float:
        """Average requested GPUs per job (Table 2)."""
        demands = self.gpu_demands()
        return float(demands.mean()) if demands.size else 0.0

    # -- serialization --------------------------------------------------------

    _FIELDS = ["job_id", "cluster", "job_type", "submit_time", "start_time",
               "end_time", "duration", "gpu_demand", "cpu_demand",
               "final_status", "gpu_utilization", "failure_reason"]

    def to_csv(self, path: str | Path) -> None:
        """Write the job log as CSV (AcmeTrace-style schema)."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self._FIELDS)
            writer.writeheader()
            for job in self.jobs:
                writer.writerow(job.to_record())

    @classmethod
    def from_csv(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`to_csv`."""
        path = Path(path)
        jobs = []
        with path.open() as handle:
            for row in csv.DictReader(handle):
                for key in ("start_time", "end_time", "failure_reason"):
                    if row.get(key) in ("", "None"):
                        row[key] = None
                jobs.append(Job.from_record(row))
        cluster = jobs[0].cluster if jobs else "unknown"
        return cls(cluster, jobs)

    def to_jsonl(self, path: str | Path) -> None:
        """Write one JSON record per job."""
        path = Path(path)
        with path.open("w") as handle:
            for job in self.jobs:
                handle.write(json.dumps(job.to_record()) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "Trace":
        """Load a trace written by :meth:`to_jsonl`."""
        path = Path(path)
        jobs = []
        with path.open() as handle:
            for line in handle:
                if line.strip():
                    jobs.append(Job.from_record(json.loads(line)))
        cluster = jobs[0].cluster if jobs else "unknown"
        return cls(cluster, jobs)
