"""Synthetic comparison datacenters: Philly, Helios, PAI (Table 2).

The paper contrasts Acme against three earlier general-DL traces.  We model
each with the statistics those papers (and this paper's Fig. 2/3 and
Table 2) report:

* **Philly** (Microsoft, 2017): 113K jobs, avg 1.9 GPUs/job, long
  durations (mean ≈ 12.8× Acme's), broad GPU-utilization spread with a
  median near 48%.
* **Helios** (SenseTime, 2020): 3.36M jobs, avg 3.7 GPUs/job, durations
  between Philly and Acme; utilization data unavailable.
* **PAI** (Alibaba, 2020): 1.26M jobs, avg 0.7 GPUs/job (fractional GPU
  sharing), median GPU utilization 4%, single-GPU jobs > 68% of GPU time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.distributions import (Choice, Distribution, LogNormal,
                                     Mixture, Uniform)


def _lognormal(median: float, mean: float) -> LogNormal:
    sigma = math.sqrt(2.0 * math.log(mean / median))
    return LogNormal(math.log(median), sigma)


@dataclass(frozen=True)
class DatacenterProfile:
    """Statistical profile of a comparison datacenter."""

    name: str
    year: int
    real_jobs: int
    total_gpus: int
    gpu_model: str
    duration: Distribution
    #: requested-GPU distribution (floats: PAI allows fractional requests)
    gpu_demand: Choice
    #: per-job mean GPU utilization; None when the trace lacks it (Helios)
    utilization: Distribution | None


#: Acme's mean job duration in our calibration is ~420 s; Philly's mean is
#: 12.8x that (§3.1), Helios/PAI 2.7-3.8x shorter than Philly.
PHILLY = DatacenterProfile(
    name="philly",
    year=2017,
    real_jobs=113_000,
    total_gpus=2490,
    gpu_model="12GB/24GB",
    duration=_lognormal(median=14.4 * 60.0, mean=5376.0),
    gpu_demand=Choice([1, 2, 4, 8, 16],
                      [0.70, 0.16, 0.07, 0.05, 0.02]),
    utilization=Mixture(
        [Uniform(0.0, 0.3), Uniform(0.3, 0.7), Uniform(0.7, 1.0)],
        [0.30, 0.40, 0.30]),
)

HELIOS = DatacenterProfile(
    name="helios",
    year=2020,
    real_jobs=3_360_000,
    total_gpus=6416,
    gpu_model="1080Ti/V100",
    duration=_lognormal(median=5.0 * 60.0, mean=1991.0),
    gpu_demand=Choice([1, 2, 4, 8, 16, 32],
                      [0.52, 0.18, 0.12, 0.12, 0.04, 0.02]),
    utilization=None,
)

PAI = DatacenterProfile(
    name="pai",
    year=2020,
    real_jobs=1_260_000,
    total_gpus=6742,
    gpu_model="T4/P100/V100",
    duration=_lognormal(median=4.0 * 60.0, mean=1415.0),
    gpu_demand=Choice([0.25, 0.5, 1, 2, 4, 8],
                      [0.30, 0.25, 0.40, 0.03, 0.015, 0.005]),
    utilization=Mixture(
        [Uniform(0.0, 0.08), Uniform(0.08, 0.6), Uniform(0.6, 1.0)],
        [0.55, 0.35, 0.10]),
)

BASELINE_PROFILES = {"philly": PHILLY, "helios": HELIOS, "pai": PAI}


@dataclass
class BaselineTrace:
    """Sampled arrays for a comparison datacenter.

    These datacenters only feed CDF comparisons (Figs. 2/3), so arrays of
    per-job values suffice — no scheduling replay is needed.
    """

    name: str
    durations: np.ndarray
    gpu_demands: np.ndarray
    utilizations: np.ndarray | None

    @property
    def gpu_times(self) -> np.ndarray:
        return self.durations * self.gpu_demands

    @property
    def mean_gpus(self) -> float:
        return float(self.gpu_demands.mean())

    @property
    def median_duration(self) -> float:
        return float(np.median(self.durations))

    @property
    def mean_duration(self) -> float:
        return float(self.durations.mean())


def generate_baseline_trace(profile: DatacenterProfile, n_jobs: int,
                            seed: int = 0) -> BaselineTrace:
    """Sample ``n_jobs`` jobs from a comparison-datacenter profile."""
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    rng = np.random.default_rng(seed)
    durations = profile.duration.sample_many(rng, n_jobs)
    demands = np.array(profile.gpu_demand.sample_many(rng, n_jobs),
                       dtype=float)
    utilizations = None
    if profile.utilization is not None:
        utilizations = np.clip(
            profile.utilization.sample_many(rng, n_jobs), 0.0, 1.0)
    return BaselineTrace(profile.name, durations, demands, utilizations)
