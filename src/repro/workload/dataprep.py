"""Data-preparation stage model (§2.1, stage 1).

The first stage of the development pipeline: gathering raw corpora,
curating them (deduplication, detoxification), and tokenizing everything
for the model.  These are the CPU jobs of the trace (§2.3 counts 368K
CPU jobs on Seren), and their output size determines how long the
pretraining stage must run for a target token budget.

The yields and throughputs are order-of-magnitude constants from the
public data-curation literature (RefinedWeb/SlimPajama-style pipelines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

TB = 10 ** 12


@dataclass(frozen=True)
class CorpusSource:
    """One raw data source entering the pipeline."""

    name: str
    raw_bytes: float
    #: fraction surviving exact+fuzzy deduplication
    dedup_yield: float = 0.55
    #: fraction surviving quality/toxicity filtering
    filter_yield: float = 0.80
    #: average bytes per token after tokenization (≈4 for English BPE,
    #: lower for CJK-heavy corpora)
    bytes_per_token: float = 4.0

    def __post_init__(self) -> None:
        if self.raw_bytes <= 0:
            raise ValueError("raw_bytes must be positive")
        for rate in (self.dedup_yield, self.filter_yield):
            if not 0.0 < rate <= 1.0:
                raise ValueError("yields must be in (0, 1]")
        if self.bytes_per_token <= 0:
            raise ValueError("bytes_per_token must be positive")

    @property
    def curated_bytes(self) -> float:
        return self.raw_bytes * self.dedup_yield * self.filter_yield

    @property
    def tokens(self) -> float:
        return self.curated_bytes / self.bytes_per_token


#: A plausible pretraining mixture for an InternLM-scale run (~1.6T
#: tokens after curation, matching the log banner in
#: ``repro.failures.logs``).
DEFAULT_MIXTURE: list[CorpusSource] = [
    CorpusSource("web-en", raw_bytes=30 * TB, dedup_yield=0.30,
                 filter_yield=0.45),
    CorpusSource("web-zh", raw_bytes=9 * TB, dedup_yield=0.32,
                 filter_yield=0.45, bytes_per_token=3.0),
    CorpusSource("code", raw_bytes=4 * TB, dedup_yield=0.45,
                 filter_yield=0.70, bytes_per_token=3.2),
    CorpusSource("books", raw_bytes=0.6 * TB, dedup_yield=0.85,
                 filter_yield=0.95),
    CorpusSource("papers", raw_bytes=0.9 * TB, dedup_yield=0.80,
                 filter_yield=0.90),
    CorpusSource("wiki", raw_bytes=0.04 * TB, dedup_yield=0.95,
                 filter_yield=0.98),
]


@dataclass
class DataPrepPipeline:
    """End-to-end curation + tokenization accounting."""

    sources: list[CorpusSource] = field(
        default_factory=lambda: list(DEFAULT_MIXTURE))
    #: curation throughput per CPU core, bytes/s (dedup hashing + filters)
    curation_bytes_per_core_second: float = 15e6
    #: tokenizer throughput per CPU core, bytes/s
    tokenize_bytes_per_core_second: float = 4e6

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError("pipeline needs at least one source")

    # -- outputs -----------------------------------------------------------

    @property
    def raw_bytes(self) -> float:
        return sum(source.raw_bytes for source in self.sources)

    @property
    def curated_bytes(self) -> float:
        return sum(source.curated_bytes for source in self.sources)

    @property
    def total_tokens(self) -> float:
        return sum(source.tokens for source in self.sources)

    @property
    def overall_yield(self) -> float:
        """Curated bytes / raw bytes — how much curation throws away."""
        return self.curated_bytes / self.raw_bytes

    # -- compute cost ---------------------------------------------------------

    def curation_core_hours(self) -> float:
        return self.raw_bytes / self.curation_bytes_per_core_second \
            / 3600.0

    def tokenization_core_hours(self) -> float:
        return (self.curated_bytes
                / self.tokenize_bytes_per_core_second / 3600.0)

    def total_core_hours(self) -> float:
        return self.curation_core_hours() + self.tokenization_core_hours()

    def wall_days(self, cpu_cores: int) -> float:
        """Wall-clock with ``cpu_cores`` working in parallel."""
        if cpu_cores <= 0:
            raise ValueError("cpu_cores must be positive")
        return self.total_core_hours() / cpu_cores / 24.0

    # -- connection to pretraining --------------------------------------------

    def pretraining_steps(self, tokens_per_step: float,
                          epochs: float = 1.0) -> int:
        """Optimizer steps to consume the curated tokens."""
        if tokens_per_step <= 0:
            raise ValueError("tokens_per_step must be positive")
        return int(self.total_tokens * epochs / tokens_per_step)

    def summary(self) -> dict:
        """The pipeline at a glance (for reports/examples)."""
        return {
            "raw_tb": self.raw_bytes / TB,
            "curated_tb": self.curated_bytes / TB,
            "overall_yield": self.overall_yield,
            "total_tokens_T": self.total_tokens / 1e12,
            "curation_core_hours": self.curation_core_hours(),
            "tokenization_core_hours": self.tokenization_core_hours(),
        }
