"""Trace calibration validation.

Checks a trace — synthetic or externally supplied in the AcmeTrace CSV
schema — against the paper's published anchors, producing a pass/fail
calibration report.  Useful both as a regression gate for the generator
and as a comparison tool for real trace data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.scheduler.job import FinalStatus, JobType
from repro.workload.trace import Trace


@dataclass(frozen=True)
class Anchor:
    """One published statistic with an acceptance band."""

    name: str
    paper_value: float
    low: float
    high: float
    measure: Callable[[Trace], float]
    #: anchors that only apply to one cluster
    cluster: str | None = None

    def applies_to(self, trace: Trace) -> bool:
        """Whether this anchor applies to the trace's cluster."""
        return self.cluster is None or self.cluster == trace.cluster


@dataclass(frozen=True)
class AnchorResult:
    """One anchor's measured value and pass/fail status."""
    anchor: Anchor
    measured: float

    @property
    def passed(self) -> bool:
        return self.anchor.low <= self.measured <= self.anchor.high

    def as_row(self) -> dict:
        """Render as a report-table row."""
        return {
            "anchor": self.anchor.name,
            "paper": self.anchor.paper_value,
            "measured": self.measured,
            "band": f"[{self.anchor.low:g}, {self.anchor.high:g}]",
            "status": "PASS" if self.passed else "FAIL",
        }


def _median_duration(trace: Trace) -> float:
    return float(np.median(trace.durations()))


def _failed_count_share(trace: Trace) -> float:
    counts = trace.status_counts()
    return counts.get(FinalStatus.FAILED, 0) / max(
        sum(counts.values()), 1)


def _canceled_time_share(trace: Trace) -> float:
    times = trace.status_gpu_time()
    total = sum(times.values())
    return times.get(FinalStatus.CANCELED, 0.0) / total if total else 0.0


def _completed_time_share(trace: Trace) -> float:
    times = trace.status_gpu_time()
    total = sum(times.values())
    return times.get(FinalStatus.COMPLETED, 0.0) / total if total else 0.0


def _median_utilization(trace: Trace) -> float:
    return float(np.median(trace.utilizations()))


def _pretrain_time_share(trace: Trace) -> float:
    return trace.gpu_time_share_by_type().get(JobType.PRETRAIN, 0.0)


def _eval_count_share(trace: Trace) -> float:
    return trace.count_share_by_type().get(JobType.EVALUATION, 0.0)


def _eval_median_demand(trace: Trace) -> float:
    demands = trace.gpu_demands(JobType.EVALUATION)
    return float(np.median(demands)) if demands.size else 0.0


def _pretrain_median_demand(trace: Trace) -> float:
    demands = trace.gpu_demands(JobType.PRETRAIN)
    return float(np.median(demands)) if demands.size else 0.0


#: The paper's §3 anchors with generous sampling bands.
PAPER_ANCHORS: list[Anchor] = [
    Anchor("median job duration (s)", 120.0, 60.0, 240.0,
           _median_duration),
    Anchor("failed job count share", 0.40, 0.28, 0.52,
           _failed_count_share),
    Anchor("canceled GPU-time share", 0.62, 0.45, 0.92,
           _canceled_time_share),
    Anchor("completed GPU-time share", 0.25, 0.04, 0.45,
           _completed_time_share),
    Anchor("median GPU utilization", 0.98, 0.90, 1.0,
           _median_utilization),
    Anchor("evaluation median GPU demand", 1.0, 1.0, 4.0,
           _eval_median_demand),
    Anchor("pretraining median GPU demand", 512.0, 96.0, 2048.0,
           _pretrain_median_demand),
    Anchor("kalos evaluation count share", 0.929, 0.90, 0.95,
           _eval_count_share, cluster="kalos"),
    Anchor("kalos pretraining GPU-time share", 0.94, 0.85, 0.995,
           _pretrain_time_share, cluster="kalos"),
    Anchor("seren pretraining GPU-time share", 0.695, 0.45, 0.90,
           _pretrain_time_share, cluster="seren"),
]


def validate_trace(trace: Trace,
                   anchors: list[Anchor] | None = None
                   ) -> list[AnchorResult]:
    """Evaluate every applicable anchor against the trace."""
    if not trace.gpu_jobs():
        raise ValueError("trace has no GPU jobs")
    anchors = anchors if anchors is not None else PAPER_ANCHORS
    return [AnchorResult(anchor, anchor.measure(trace))
            for anchor in anchors if anchor.applies_to(trace)]


def calibration_report(trace: Trace) -> tuple[str, bool]:
    """(rendered report, all_passed) for a trace."""
    from repro.analysis.report import render_table

    results = validate_trace(trace)
    rows = [result.as_row() for result in results]
    all_passed = all(result.passed for result in results)
    title = (f"calibration of {trace.cluster} trace "
             f"({len(trace)} jobs): "
             f"{'PASS' if all_passed else 'FAIL'}")
    return render_table(rows, title=title), all_passed
