"""Synthetic workload/trace generation.

The paper analyzes a six-month production trace (AcmeTrace).  We cannot
ship the production trace, so this package generates synthetic traces whose
distributions are calibrated to every statistic the paper reports: workload
mix (Fig. 4), GPU-demand distributions (Fig. 5), duration/queueing shapes
(Figs. 2/6), final-status mix (Fig. 17), and the comparison datacenters of
Table 2 (Philly, Helios, PAI).
"""

from repro.workload.spec import (ClusterWorkloadSpec, TypeSpec,
                                 SEREN_SPEC, KALOS_SPEC)
from repro.workload.generator import TraceGenerator
from repro.workload.baselines import (DatacenterProfile, PHILLY, HELIOS, PAI,
                                      generate_baseline_trace,
                                      BASELINE_PROFILES)
from repro.workload.trace import Trace
from repro.workload.validate import (Anchor, AnchorResult, PAPER_ANCHORS,
                                     calibration_report, validate_trace)
from repro.workload.dataprep import (CorpusSource, DataPrepPipeline,
                                     DEFAULT_MIXTURE)
from repro.workload.streams import (ArrivalStream, EvalBurstConfig,
                                    EvalBurstStream, PoissonJobStream,
                                    PoissonStreamConfig,
                                    stream_from_config)

__all__ = [
    "ClusterWorkloadSpec",
    "TypeSpec",
    "SEREN_SPEC",
    "KALOS_SPEC",
    "TraceGenerator",
    "DatacenterProfile",
    "PHILLY",
    "HELIOS",
    "PAI",
    "BASELINE_PROFILES",
    "generate_baseline_trace",
    "Trace",
    "Anchor",
    "AnchorResult",
    "PAPER_ANCHORS",
    "calibration_report",
    "validate_trace",
    "CorpusSource",
    "DataPrepPipeline",
    "DEFAULT_MIXTURE",
    "ArrivalStream",
    "EvalBurstConfig",
    "EvalBurstStream",
    "PoissonJobStream",
    "PoissonStreamConfig",
    "stream_from_config",
]
