"""Synthetic Acme trace generation.

``TraceGenerator`` samples a job log for one cluster from its
:class:`~repro.workload.spec.ClusterWorkloadSpec`:

* per-type counts follow the calibrated count shares;
* arrivals are Poisson over the trace span with a diurnal modulation
  (LLM developers, like everyone, submit more during the day);
* evaluation jobs arrive in simultaneous batches (one batch per checkpoint
  across ~60 datasets, §3.2/§6.2);
* terminal status is sampled per type; failed jobs terminate early and
  canceled pretraining jobs linger (Appendix A.1);
* per-job mean GPU utilization follows the cluster's polarized mixture,
  with failed jobs biased toward the idle mode.
"""

from __future__ import annotations

import numpy as np

from repro.scheduler.job import FinalStatus, Job, JobType
from repro.sim.distributions import Choice
from repro.workload.spec import ClusterWorkloadSpec, TypeSpec
from repro.workload.trace import Trace

#: Jitter between members of one evaluation batch, seconds.
_BATCH_JITTER = 2.0


class TraceGenerator:
    """Generates a synthetic job trace for one cluster."""

    def __init__(self, spec: ClusterWorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def generate(self, n_jobs: int, include_cpu_jobs: bool = False) -> Trace:
        """Generate ``n_jobs`` GPU jobs (plus CPU jobs if requested)."""
        if n_jobs <= 0:
            raise ValueError("n_jobs must be positive")
        rng = np.random.default_rng(self.seed)
        jobs: list[Job] = []
        counts = self._type_counts(n_jobs)
        for type_spec, count in counts:
            jobs.extend(self._generate_type(rng, type_spec, count))
        if include_cpu_jobs:
            ratio = self.spec.real_cpu_jobs / self.spec.real_gpu_jobs
            jobs.extend(self._generate_cpu_jobs(rng,
                                                int(round(n_jobs * ratio))))
        for index, job in enumerate(sorted(jobs,
                                           key=lambda j: j.submit_time)):
            job.job_id = f"{self.spec.cluster}-{index:06d}"
        return Trace(self.spec.cluster, jobs)

    # -- internals -----------------------------------------------------------

    def _type_counts(self, n_jobs: int) -> list[tuple[TypeSpec, int]]:
        """Largest-remainder apportionment of ``n_jobs`` over types."""
        raw = [(spec, spec.count_share * n_jobs)
               for spec in self.spec.type_specs]
        floors = [(spec, int(value)) for spec, value in raw]
        assigned = sum(count for _, count in floors)
        remainders = sorted(
            range(len(raw)),
            key=lambda i: raw[i][1] - floors[i][1],
            reverse=True)
        counts = [count for _, count in floors]
        for i in remainders[:n_jobs - assigned]:
            counts[i] += 1
        return [(spec, count) for (spec, _), count in zip(floors, counts)]

    def _arrival_times(self, rng: np.random.Generator, count: int,
                       batch_size: int) -> np.ndarray:
        """Diurnally modulated arrivals; batched types share timestamps."""
        n_anchors = max(1, int(np.ceil(count / batch_size)))
        anchors = self._diurnal_times(rng, n_anchors)
        if batch_size == 1:
            return anchors[:count]
        times = np.repeat(anchors, batch_size)[:count]
        jitter = rng.uniform(0.0, _BATCH_JITTER, size=count)
        return times + jitter

    def _diurnal_times(self, rng: np.random.Generator, count: int
                       ) -> np.ndarray:
        """Thinned Poisson process: daytime rate 3x the nighttime rate."""
        uniform = rng.uniform(0.0, self.spec.span, size=count * 2)
        hour_of_day = (uniform % 86400.0) / 3600.0
        # Acceptance probability peaks at 14:00 local time.
        accept_p = 0.4 + 0.6 * np.exp(-((hour_of_day - 14.0) ** 2) / 18.0)
        accepted = uniform[rng.uniform(size=uniform.size) < accept_p]
        while accepted.size < count:
            extra = rng.uniform(0.0, self.spec.span, size=count)
            accepted = np.concatenate([accepted, extra])
        return np.sort(accepted[:count])

    def _generate_type(self, rng: np.random.Generator, spec: TypeSpec,
                       count: int) -> list[Job]:
        if count == 0:
            return []
        times = self._arrival_times(rng, count, spec.batch_size)
        demands = spec.gpu_demand.sample_many(rng, count)
        durations = spec.duration.sample_many(rng, count)
        statuses = self._sample_statuses(rng, spec, count)
        jobs = []
        for i in range(count):
            duration = float(durations[i])
            status = statuses[i]
            if status is FinalStatus.FAILED:
                duration *= spec.failed_duration_factor.sample(rng)
            elif status is FinalStatus.CANCELED:
                duration *= spec.canceled_duration_factor.sample(rng)
            duration = max(duration, 1.0)
            job = Job(
                job_id="pending",
                cluster=self.spec.cluster,
                job_type=spec.job_type,
                submit_time=float(times[i]),
                duration=duration,
                gpu_demand=int(demands[i]),
                final_status=status,
                gpu_utilization=self._sample_utilization(rng, status),
            )
            jobs.append(job)
        return jobs

    def _sample_statuses(self, rng: np.random.Generator, spec: TypeSpec,
                         count: int) -> list[FinalStatus]:
        options = list(spec.status_weights.keys())
        weights = [spec.status_weights[status] for status in options]
        return Choice(options, weights).sample_many(rng, count)

    def _sample_utilization(self, rng: np.random.Generator,
                            status: FinalStatus) -> float:
        utilization = self.spec.utilization.sample(rng)
        # Failed jobs die early, often before reaching steady-state compute;
        # bias them toward the idle mode of the polarized distribution.
        if status is FinalStatus.FAILED and rng.uniform() < 0.35:
            utilization = float(rng.uniform(0.0, 0.10))
        return float(np.clip(utilization, 0.0, 1.0))

    def _generate_cpu_jobs(self, rng: np.random.Generator, count: int
                           ) -> list[Job]:
        if count <= 0:
            return []
        times = self._diurnal_times(rng, count)
        durations = rng.lognormal(np.log(60.0), 1.2, size=count)
        jobs = []
        for i in range(count):
            status = (FinalStatus.COMPLETED if rng.uniform() < 0.7
                      else FinalStatus.FAILED)
            jobs.append(Job(
                job_id="pending",
                cluster=self.spec.cluster,
                job_type=JobType.OTHER,
                submit_time=float(times[i]),
                duration=float(max(durations[i], 1.0)),
                gpu_demand=0,
                cpu_demand=int(rng.integers(1, 16)),
                final_status=status,
            ))
        return jobs
