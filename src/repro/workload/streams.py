"""Open-ended streaming arrival processes for the simulation service.

``TraceGenerator`` samples a *closed* trace: a fixed number of jobs,
all materialized up front.  The paper's cluster, though, is operated
continuously — eval trials and fine-tune jobs arrive as an unbounded
stream (§3.2: evaluation jobs arrive in batches per checkpoint, the
rest as a Poisson-like background).  These processes generate that
stream lazily, one arrival at a time, so ``repro.service`` can feed a
long-lived engine without ever deciding how many jobs "exist".

Determinism contract: a stream is a pure function of its config — the
``k``-th call to :meth:`emit_next` returns the same arrivals no matter
when it is made or how the run is partitioned into horizons.  All
randomness comes from registered RNG streams
(:data:`repro.chaos.streams.STREAM_OFFSETS`), one draw sequence per
stream instance, which is what makes journal-replay restore exact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.scheduler.job import Job, JobType

#: jitter between members of one evaluation burst, seconds (§3.2 —
#: trials of one checkpoint land almost simultaneously)
_BURST_JITTER = 2.0


@dataclass(frozen=True)
class PoissonStreamConfig:
    """A memoryless single-job arrival process (SFT/debug background).

    All fields are primitives so the config round-trips through the
    service's JSON snapshot unchanged.
    """

    name: str
    seed: int = 0
    rate_per_hour: float = 60.0
    job_type: str = "sft"
    #: GPU demands drawn uniformly from this tuple (Fig. 5: demand is
    #: dominated by small powers of two)
    gpu_choices: tuple[int, ...] = (1, 2, 4, 8)
    duration_median_s: float = 600.0
    #: lognormal shape of the duration spread (Fig. 2a long tail)
    duration_sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")
        if not self.gpu_choices:
            raise ValueError("gpu_choices must be non-empty")
        JobType(self.job_type)  # validate eagerly, not at emit time


@dataclass(frozen=True)
class EvalBurstConfig:
    """Checkpoint-evaluation bursts: batches of short one-GPU trials.

    Bursts arrive as a Poisson process; each burst lands
    ``batch_size`` trials within a couple of seconds (§6.2's ~60-
    dataset eval fan-out, scaled by config).
    """

    name: str
    seed: int = 0
    bursts_per_hour: float = 4.0
    batch_size: int = 8
    gpu_demand: int = 1
    trial_duration_s: float = 300.0
    #: lognormal shape of per-trial duration spread
    duration_sigma: float = 0.3

    def __post_init__(self) -> None:
        if self.bursts_per_hour <= 0:
            raise ValueError("bursts_per_hour must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


class PoissonJobStream:
    """Seeded, open-ended Poisson job arrivals.

    ``emit_next`` advances the stream's own arrival clock by an
    exponential gap and returns the single ``(submit_time, job)`` it
    produced.  The stream never looks at the engine clock: arrival
    ``k`` depends only on the config and ``k``.
    """

    kind = "poisson"

    def __init__(self, config: PoissonStreamConfig) -> None:
        # deferred: importing repro.chaos at module scope would close
        # an import cycle (chaos -> invariants -> recovery ->
        # diagnosis -> failures -> workload)
        from repro.chaos.streams import stream_rng
        self.config = config
        self._rng = stream_rng(config.seed, "service_jobs")
        self._time = 0.0
        self.emitted = 0

    def emit_next(self) -> list[tuple[float, Job]]:
        config = self.config
        self._time += float(
            self._rng.exponential(3600.0 / config.rate_per_hour))
        duration = float(config.duration_median_s * 2.0 ** (
            config.duration_sigma * self._rng.standard_normal()))
        gpus = int(config.gpu_choices[
            int(self._rng.integers(0, len(config.gpu_choices)))])
        job = Job(
            job_id=f"{config.name}-{self.emitted:06d}",
            cluster="service", job_type=JobType(config.job_type),
            submit_time=self._time, duration=duration,
            gpu_demand=gpus)
        self.emitted += 1
        return [(self._time, job)]

    def max_gpu_demand(self) -> int:
        """Largest single-job GPU demand this stream can emit."""
        return max(self.config.gpu_choices)

    def anchor_time(self) -> float:
        """The stream's internal arrival clock (last emitted anchor)."""
        return self._time

    def to_config_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self.config)}


class EvalBurstStream:
    """Seeded, open-ended evaluation bursts.

    Each ``emit_next`` produces one whole burst: an exponential gap to
    the burst anchor, then ``batch_size`` trials jittered within
    ``_BURST_JITTER`` seconds of it.
    """

    kind = "eval_burst"

    def __init__(self, config: EvalBurstConfig) -> None:
        from repro.chaos.streams import stream_rng
        self.config = config
        self._rng = stream_rng(config.seed, "service_evals")
        self._time = 0.0
        self.emitted = 0
        self._bursts = 0

    def emit_next(self) -> list[tuple[float, Job]]:
        config = self.config
        self._time += float(
            self._rng.exponential(3600.0 / config.bursts_per_hour))
        burst = self._bursts
        self._bursts += 1
        arrivals: list[tuple[float, Job]] = []
        for index in range(config.batch_size):
            submit = self._time + float(
                self._rng.uniform(0.0, _BURST_JITTER))
            duration = float(config.trial_duration_s * 2.0 ** (
                config.duration_sigma * self._rng.standard_normal()))
            job = Job(
                job_id=f"{config.name}-{burst:04d}-{index:02d}",
                cluster="service", job_type=JobType.EVALUATION,
                submit_time=submit, duration=duration,
                gpu_demand=config.gpu_demand)
            self.emitted += 1
            arrivals.append((submit, job))
        return arrivals

    def max_gpu_demand(self) -> int:
        """Largest single-trial GPU demand this stream can emit."""
        return self.config.gpu_demand

    def anchor_time(self) -> float:
        """The stream's internal burst clock (last burst anchor)."""
        return self._time

    def to_config_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self.config)}


ArrivalStream = PoissonJobStream | EvalBurstStream


def stream_from_config(config: dict) -> ArrivalStream:
    """Rebuild a stream from its snapshot dict (see service/state)."""
    payload = dict(config)
    kind = payload.pop("kind")
    if "gpu_choices" in payload:
        payload["gpu_choices"] = tuple(payload["gpu_choices"])
    if kind == PoissonJobStream.kind:
        return PoissonJobStream(PoissonStreamConfig(**payload))
    if kind == EvalBurstStream.kind:
        return EvalBurstStream(EvalBurstConfig(**payload))
    raise ValueError(f"unknown arrival-stream kind {kind!r}")
