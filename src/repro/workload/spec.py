"""Calibration constants for the Acme workload generator.

Every number here traces back to a statement in the paper:

* workload mix and GPU-time shares — Fig. 4 and §3.2;
* GPU-demand ranges per type — Fig. 5 (evaluation < 4 GPUs, pretraining
  often > 100, debugging wide);
* duration distributions — Fig. 2a/6 (median job duration 2 minutes,
  pretraining longest but within an order of magnitude at the median,
  < 5% of pretraining jobs exceed one day);
* final-status mix — Fig. 17 (~40% failed jobs holding ~10% of GPU time,
  ~7% canceled holding > 60%, completions holding 20–30%);
* utilization polarization — Fig. 2b (median GPU utilization 97%/99%).

Where the paper gives only qualitative guidance (e.g. the exact SFT share
of Seren's job count) we pick values consistent with the figures; measured
deviations are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.scheduler.job import FinalStatus, JobType
from repro.sim.distributions import (Choice, Constant, Distribution,
                                     LogNormal, Mixture, Uniform)

MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


def _lognormal_median(median: float, sigma: float) -> LogNormal:
    return LogNormal(math.log(median), sigma)


@dataclass(frozen=True)
class TypeSpec:
    """Generator parameters for one workload type on one cluster."""

    job_type: JobType
    #: share of the cluster's GPU-job count
    count_share: float
    gpu_demand: Choice
    duration: Distribution
    #: probability of each terminal status
    status_weights: dict[FinalStatus, float]
    #: multiplier applied to duration when the job fails — failures happen
    #: "primarily at the beginning of LLM workloads" (§1, §5)
    failed_duration_factor: Distribution = field(
        default_factory=lambda: Uniform(0.02, 0.30))
    #: multiplier applied when the job is canceled.  Appendix A.1: canceled
    #: jobs are dominated by large pretraining runs users let run for a
    #: while (performance anomalies, silent stalls) before killing them.
    canceled_duration_factor: Distribution = field(
        default_factory=lambda: Constant(1.0))
    #: evaluation jobs are "submitted as a batch simultaneously" (§3.2)
    batch_size: int = 1


def _eval_spec(count_share: float) -> TypeSpec:
    return TypeSpec(
        job_type=JobType.EVALUATION,
        count_share=count_share,
        gpu_demand=Choice([1, 2, 4, 8], [0.55, 0.25, 0.15, 0.05]),
        duration=_lognormal_median(2.5 * MINUTE, 1.4),
        status_weights={FinalStatus.COMPLETED: 0.555,
                        FinalStatus.FAILED: 0.42,
                        FinalStatus.CANCELED: 0.025},
        # Evaluation jobs are minutes-long; even an early failure consumes
        # a sizable fraction of the nominal runtime.
        failed_duration_factor=Uniform(0.20, 0.90),
        batch_size=60,
    )


def _pretrain_spec(count_share: float, demand: Choice,
                   median_duration: float) -> TypeSpec:
    return TypeSpec(
        job_type=JobType.PRETRAIN,
        count_share=count_share,
        gpu_demand=demand,
        duration=_lognormal_median(median_duration, 1.5),
        status_weights={FinalStatus.COMPLETED: 0.20,
                        FinalStatus.FAILED: 0.35,
                        FinalStatus.CANCELED: 0.45},
        failed_duration_factor=Uniform(0.05, 0.40),
        canceled_duration_factor=Uniform(1.2, 2.4),
    )


def _debug_spec(count_share: float, demand: Choice,
                median_duration: float, sigma: float) -> TypeSpec:
    return TypeSpec(
        job_type=JobType.DEBUG,
        count_share=count_share,
        gpu_demand=demand,
        duration=_lognormal_median(median_duration, sigma),
        status_weights={FinalStatus.COMPLETED: 0.45,
                        FinalStatus.FAILED: 0.40,
                        FinalStatus.CANCELED: 0.15},
    )


def _other_spec(count_share: float) -> TypeSpec:
    return TypeSpec(
        job_type=JobType.OTHER,
        count_share=count_share,
        gpu_demand=Choice([1, 2, 4, 8, 16], [0.45, 0.2, 0.15, 0.12, 0.08]),
        duration=_lognormal_median(3.0 * MINUTE, 1.3),
        status_weights={FinalStatus.COMPLETED: 0.55,
                        FinalStatus.FAILED: 0.38,
                        FinalStatus.CANCELED: 0.07},
    )


@dataclass(frozen=True)
class ClusterWorkloadSpec:
    """Full generator calibration for one cluster."""

    cluster: str
    total_gpus: int
    #: six-month job counts in the real trace (Table 2 / §2.3 scaling)
    real_gpu_jobs: int
    real_cpu_jobs: int
    type_specs: list[TypeSpec]
    #: per-job mean GPU utilization: polarized mixture (Fig. 2b); first
    #: component is the near-idle mass, second the near-full mass.
    utilization: Mixture
    #: trace span in seconds (six months, March–August 2023)
    span: float = 183 * DAY

    def __post_init__(self) -> None:
        total = sum(spec.count_share for spec in self.type_specs)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.cluster}: count shares sum to {total}, expected 1.0")

    def spec_for(self, job_type: JobType) -> TypeSpec:
        """The TypeSpec of one workload type."""
        for spec in self.type_specs:
            if spec.job_type is job_type:
                return spec
        raise KeyError(job_type)


#: Seren (Fig. 4a/b): pretraining 0.9% of jobs / 69.5% of GPU time; SFT and
#: MLLM exist only here; median cluster GPU utilization 97%.
SEREN_SPEC = ClusterWorkloadSpec(
    cluster="seren",
    total_gpus=2288,
    real_gpu_jobs=664_000,
    real_cpu_jobs=368_000,
    type_specs=[
        _pretrain_spec(
            0.009,
            Choice([32, 64, 128, 256, 512, 1024],
                   [0.10, 0.15, 0.25, 0.25, 0.15, 0.10]),
            median_duration=20.0 * MINUTE),
        TypeSpec(
            job_type=JobType.SFT,
            count_share=0.025,
            gpu_demand=Choice([8, 16, 32, 64], [0.40, 0.30, 0.20, 0.10]),
            duration=_lognormal_median(10.0 * MINUTE, 1.2),
            status_weights={FinalStatus.COMPLETED: 0.50,
                            FinalStatus.FAILED: 0.38,
                            FinalStatus.CANCELED: 0.12},
        ),
        TypeSpec(
            job_type=JobType.MLLM,
            count_share=0.016,
            gpu_demand=Choice([8, 16, 32, 64, 128, 256],
                              [0.25, 0.20, 0.20, 0.15, 0.12, 0.08]),
            duration=_lognormal_median(10.0 * MINUTE, 1.6),
            status_weights={FinalStatus.COMPLETED: 0.40,
                            FinalStatus.FAILED: 0.40,
                            FinalStatus.CANCELED: 0.20},
        ),
        _eval_spec(0.78),
        _debug_spec(
            0.12,
            Choice([1, 2, 4, 8, 16, 32, 64, 128],
                   [0.35, 0.15, 0.12, 0.12, 0.10, 0.08, 0.05, 0.03]),
            median_duration=5.0 * MINUTE, sigma=1.5),
        _other_spec(0.05),
    ],
    utilization=Mixture([Uniform(0.0, 0.10), Uniform(0.95, 1.0)],
                        [0.20, 0.80]),
)

#: Kalos (Fig. 4c/d): evaluation 92.9% of jobs / 0.8% of GPU time;
#: pretraining 3.2% of jobs / 94.0% of GPU time; jobs >= 256 GPUs dominate
#: GPU time (> 96%); median cluster GPU utilization 99%.
KALOS_SPEC = ClusterWorkloadSpec(
    cluster="kalos",
    total_gpus=2416,
    real_gpu_jobs=20_000,
    real_cpu_jobs=42_000,
    type_specs=[
        _pretrain_spec(
            0.032,
            Choice([256, 512, 1024, 2048], [0.15, 0.35, 0.30, 0.20]),
            median_duration=15.0 * MINUTE),
        _eval_spec(0.929),
        _debug_spec(
            0.030,
            Choice([1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
                   [0.30, 0.14, 0.12, 0.10, 0.10, 0.08, 0.06, 0.05,
                    0.03, 0.02]),
            median_duration=8.0 * MINUTE, sigma=1.6),
        _other_spec(0.009),
    ],
    utilization=Mixture([Uniform(0.0, 0.10), Uniform(0.98, 1.0)],
                        [0.20, 0.80]),
)
