#!/usr/bin/env python3
"""End-to-end fault-tolerant pretraining (§6.1).

Drives the three §6.1 subsystems together over a simulated multi-day
123B pretraining campaign:

1. the training loop saves state through the **asynchronous
   checkpointer** (real threads, throttled storage);
2. every injected failure produces a realistic runtime log, which the
   **diagnosis system** (compression -> rules -> agent) root-causes;
3. the **recovery controller** runs the two-round NCCL test for
   infrastructure faults, cordons convicted nodes, and restarts from
   the latest durable checkpoint — or refuses to restart script errors.

Run:  python examples/fault_tolerant_pretraining.py
"""

import numpy as np

from repro.analysis.report import render_key_values, render_table
from repro.cluster.machine import Node, kalos_node_spec
from repro.core.checkpoint import AsyncCheckpointer, InMemoryStorage
from repro.core.diagnosis import DiagnosisSystem
from repro.core.recovery import (CheckpointCatalog, CollectiveTester,
                                 RecoveryController)
from repro.failures.injector import FailureInjector
from repro.failures.logs import LogGenerator

STEP_TIME = 14.0            # seconds per iteration (123B on 2048 GPUs)
CHECKPOINT_EVERY = 120      # iterations (~30 simulated minutes)
TARGET_ITERATIONS = 4000
MTBF_STEPS = 900            # mean iterations between failures


def main():
    rng = np.random.default_rng(3)
    nodes = [Node(name=f"node-{i:03d}", spec=kalos_node_spec())
             for i in range(16)]
    injector = FailureInjector(seed=3)
    logs = LogGenerator(seed=3)
    catalog = CheckpointCatalog()
    controller = RecoveryController(DiagnosisSystem(), catalog, nodes)
    storage = InMemoryStorage(bandwidth=200e6)
    incidents = []
    blocking_total = 0.0

    with AsyncCheckpointer(storage, buffer_slots=3) as checkpointer:
        iteration = 0
        while iteration < TARGET_ITERATIONS:
            steps_until_failure = int(rng.exponential(MTBF_STEPS)) + 1
            segment_end = min(iteration + steps_until_failure,
                              TARGET_ITERATIONS)
            # Run the segment, checkpointing as we go.
            for step in range(iteration, segment_end):
                if step and step % CHECKPOINT_EVERY == 0:
                    state = {"weights": rng.normal(size=20_000),
                             "step": np.array([step])}
                    blocking_total += checkpointer.save(step, state)
                    catalog.add(step)
            iteration = segment_end
            if iteration >= TARGET_ITERATIONS:
                break
            # Failure strikes: draw a reason a large gang job would hit,
            # synthesize its runtime log, and let the controller react.
            event = injector.sample_pretraining_failure("kalos")
            log = logs.failed_log(event.reason, n_steps=60)
            faulty = {nodes[int(rng.integers(len(nodes)))].name}
            tester = CollectiveTester(faulty)
            plan = controller.handle_failure(log.lines, tester)
            incidents.append({
                "at_iteration": iteration,
                "injected": event.reason,
                "diagnosed": plan.diagnosis.reason,
                "path": plan.diagnosis.path,
                "restart": plan.restart,
                "from_checkpoint": plan.restart_checkpoint_step,
                "cordoned": ",".join(sorted(plan.cordoned_nodes)) or "-",
            })
            if plan.restart and plan.restart_checkpoint_step is not None:
                iteration = plan.restart_checkpoint_step
            for name in plan.cordoned_nodes:
                controller.nodes[name].uncordon()  # repaired off-line
        checkpointer.flush()

    print(render_table(incidents, title="== incident log =="))
    correct = sum(1 for row in incidents
                  if row["injected"] == row["diagnosed"])
    print(render_key_values({
        "iterations completed": TARGET_ITERATIONS,
        "failures handled": len(incidents),
        "diagnosis accuracy": correct / max(len(incidents), 1),
        "automation rate": controller.automation_rate(),
        "checkpoints persisted": len(storage.keys()),
        "total checkpoint blocking (s)": round(blocking_total, 3),
    }, title="\n== campaign summary =="))


if __name__ == "__main__":
    main()
