#!/usr/bin/env python3
"""Quickstart: generate a synthetic Acme trace and characterize it.

Reproduces the paper's §3 workload headlines in under a minute:
median job duration, workload mix, GPU-time concentration, final-status
distribution, and queueing-delay inversion.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.report import render_key_values, render_table
from repro.scheduler.job import JobType
from repro.scheduler.simulator import SchedulerConfig, SchedulerSimulator
from repro.workload.generator import TraceGenerator
from repro.workload.spec import KALOS_SPEC, SEREN_SPEC


def characterize(spec, n_jobs=6000, seed=0):
    trace = TraceGenerator(spec, seed=seed).generate(n_jobs)
    count = trace.count_share_by_type()
    gpu_time = trace.gpu_time_share_by_type()
    rows = [{
        "type": job_type.value,
        "count_share": count.get(job_type, 0.0),
        "gpu_time_share": gpu_time.get(job_type, 0.0),
        "median_gpus": float(np.median(trace.gpu_demands(job_type)))
        if trace.of_type(job_type) else 0.0,
    } for job_type in count]
    print(render_table(rows, title=f"\n== {spec.cluster} workload mix =="))
    print(render_key_values({
        "median job duration (s)": float(np.median(trace.durations())),
        "mean GPUs per job": trace.mean_gpu_demand(),
        "median per-job GPU utilization":
            float(np.median(trace.utilizations())),
    }, title=f"{spec.cluster} headline statistics"))
    return trace


def queueing_inversion(spec, trace):
    """Replay the trace through the quota-reservation scheduler and show
    that evaluation — smallest and shortest — waits the longest (§3.2)."""
    # Compress the span so the synthetic job count carries the
    # production arrival rate.
    for job in trace.gpu_jobs():
        job.submit_time *= len(trace) / spec.real_gpu_jobs
    simulator = SchedulerSimulator(SchedulerConfig(
        total_gpus=spec.total_gpus, reserved_fraction=0.98))
    simulator.simulate(sorted(trace.gpu_jobs(),
                              key=lambda j: j.submit_time))
    delays = {}
    for job_type in JobType:
        values = trace.queueing_delays(job_type)
        if values.size:
            delays[job_type.value] = float(np.median(values))
    print(render_key_values(
        delays, title=f"{spec.cluster} median queueing delay (s) — "
        "note evaluation's inversion"))


def main():
    for spec in (SEREN_SPEC, KALOS_SPEC):
        trace = characterize(spec)
        queueing_inversion(spec, trace)


if __name__ == "__main__":
    main()
