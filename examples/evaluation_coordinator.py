#!/usr/bin/env python3
"""Decoupled evaluation scheduling (§6.2).

Runs the paper's headline evaluation experiment: a 63-dataset round on a
7B checkpoint, scheduled (a) the baseline way — one trial per dataset,
each loading the model itself and computing metrics on-GPU — and (b)
with the trial coordinator's three techniques: precursor model staging,
decoupled CPU metric jobs, and prior-based elastic packing.

Also prints the Fig. 16 (left) loading stress test and a per-stage view
of the HumanEval trial (Fig. 13).

Run:  python examples/evaluation_coordinator.py
"""

from repro.analysis.report import render_key_values, render_table
from repro.cluster.storage import SharedStorage
from repro.core.evalsched import (CoordinatorConfig, TrialCoordinator,
                                  loading_stress_test)
from repro.evaluation import EvalStage, humaneval_profile, standard_catalog


def show_humaneval_anatomy():
    profile = humaneval_profile()
    print(render_key_values(
        {stage.value: round(profile.stage_seconds(stage), 1)
         for stage in EvalStage},
        title="== Fig 13: anatomy of a HumanEval trial (seconds) =="))
    print(render_key_values({
        "GPU-busy fraction": round(profile.gpu_busy_fraction, 3),
        "pre-inference overhead": round(
            profile.stage_fraction(EvalStage.MODEL_LOAD)
            + profile.stage_fraction(EvalStage.PREPROCESS), 3),
        "idle metric tail": round(
            profile.stage_fraction(EvalStage.METRIC), 3),
    }))


def show_loading_stress():
    storage = SharedStorage(backend_bandwidth=400e9,
                            node_nic_bandwidth=25e9 / 8.0)
    rows = [{"concurrent_trials": trials,
             "per_trial_Gbps": round(rate * 8 / 1e9, 2)}
            for trials, rate in loading_stress_test(storage, 14e9)]
    print(render_table(rows, title="\n== Fig 16 left: loading under "
                                   "contention =="))


def show_makespan_comparison():
    catalog = standard_catalog()
    rows = []
    for nodes in (1, 2, 4, 8):
        outcome = TrialCoordinator(
            CoordinatorConfig(n_nodes=nodes)).compare(catalog)
        rows.append({
            "nodes": nodes,
            "baseline_min": round(outcome["baseline"].makespan / 60, 1),
            "decoupled_min": round(
                outcome["decoupled"].makespan / 60, 1),
            "speedup": round(outcome["speedup"], 2),
            "gpu_efficiency": (
                f"{outcome['baseline'].gpu_efficiency:.2f} -> "
                f"{outcome['decoupled'].gpu_efficiency:.2f}"),
        })
    print(render_table(rows, title="\n== §6.2: 63-dataset round, "
                                   "baseline vs decoupled =="))


def main():
    show_humaneval_anatomy()
    show_loading_stress()
    show_makespan_comparison()


if __name__ == "__main__":
    main()
