#!/usr/bin/env python3
"""Full datacenter characterization report.

Regenerates every table and figure of the paper from synthetic traces
and prints a compact text report — the library-level equivalent of
re-running the paper's analysis notebooks against AcmeTrace.

Run:  python examples/datacenter_report.py [--jobs N]
"""

import argparse

from repro.analysis import figures, tables
from repro.analysis.report import (render_cdf_summary, render_key_values,
                                   render_table)


def section(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=6000,
                        help="synthetic jobs per cluster")
    args = parser.parse_args()
    n = args.jobs

    section("Table 1 — cluster configuration")
    print(render_table(tables.table1()))

    section("Table 2 — Acme vs prior DL datacenters")
    print(render_table(tables.table2(figures.acme_traces(n))))

    section("Fig 2 — job duration & GPU utilization")
    fig2 = figures.fig2(n)
    print(render_key_values(fig2["median_duration_s"],
                            title="median duration (s)"))
    print(render_key_values(fig2["median_utilization"],
                            title="median GPU utilization"))

    section("Fig 4 — workload mix")
    for cluster, data in figures.fig4(n).items():
        print(render_key_values(data["gpu_time_share"],
                                title=f"{cluster} GPU-time share"))

    section("Fig 6 — queueing-delay inversion")
    for cluster, data in figures.fig6(min(n, 3000)).items():
        print(render_key_values(data["median_queueing_delay_s"],
                                title=f"{cluster} median delay (s)"))

    section("Fig 7 — infrastructure utilization")
    for cluster, data in figures.fig7(n, samples=3000).items():
        print(render_key_values({
            "median SM activity": data["median_sm_activity"],
            "GPUs over 75% memory": data["gpu_memory_over_75pct"],
            "NIC idle fraction": data["nic_idle_fraction"],
        }, title=cluster))

    section("Figs 8/9 — power")
    fig8 = figures.fig8(n, samples=3000)
    print(render_key_values({
        "seren over-TDP fraction": fig8["seren"]["over_tdp_fraction"],
        "GPU/CPU server power ratio":
            fig8["seren_server"]["gpu_to_cpu_server_ratio"]}))
    print(render_key_values(figures.fig9(n)["shares"],
                            title="server power shares"))

    section("Figs 10-12 — pretraining profile (123B / 2048 GPUs)")
    fig10 = figures.fig10()
    print(render_key_values({
        "V1 mean SM": fig10["v1_3d"]["mean_sm"],
        "V2 mean SM": fig10["v2_hierarchical_zero"]["mean_sm"],
        "V2 speedup": fig10["v2_speedup"]}))
    fig12 = figures.fig12()
    print(render_key_values({
        f"pipeline rank {rank} peak (GiB)": gib
        for rank, gib in enumerate(fig12["per_rank_total_gib"])}))

    section("Fig 13 — evaluation trial anatomy")
    print(render_key_values(figures.fig13()["stage_seconds"]))

    section("Fig 14 — recovery campaigns")
    for name, data in figures.fig14().items():
        print(render_key_values({
            "failures": data["failures"],
            "lost iterations": data["lost_iterations"],
            "useful fraction": data["useful_fraction"]}, title=name))

    section("Table 3 — failure statistics (category roll-up)")
    summary = tables.table3_category_summary()
    for category in ("infrastructure", "framework", "script"):
        print(render_key_values(summary[category], title=category))

    section("Fig 16 / §6.2 — evaluation scheduling")
    fig16 = figures.fig16()
    print(render_key_values({
        setup: data["speedup"]
        for setup, data in fig16["makespan"].items()},
        title="decoupled-scheduling speedup"))

    section("Appendix — temperatures, host memory, carbon")
    fig21 = figures.fig21(n, samples=2000)
    print(render_key_values({
        "memory hotter than core": fig21["memory_hotter"],
        "fraction of GPUs over 65C": fig21["over_65c_fraction"]}))
    print(render_key_values(figures.fig18()["components_gb"],
                            title="host memory (GB)"))
    print(render_key_values(figures.carbon_a3(), title="A.3 carbon"))


if __name__ == "__main__":
    main()
