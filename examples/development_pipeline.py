#!/usr/bin/env python3
"""The full LLM development pipeline (Fig. 1) on one cluster.

Simulates the loop the paper describes: a long pretraining campaign with
asynchronous checkpointing and automatic failure recovery, where every
periodic checkpoint triggers a decoupled evaluation round across the 63
benchmark datasets, giving developers "timely feedback on model quality"
(§6.2).  Placement, failures, diagnosis, and cordoning all run on the
same simulated Kalos slice.

Run:  python examples/development_pipeline.py
"""

import numpy as np

from repro.analysis.report import render_key_values, render_table
from repro.cluster.cluster import make_kalos
from repro.core.diagnosis import DiagnosisSystem
from repro.core.evalsched import CoordinatorConfig, TrialCoordinator
from repro.core.recovery import (CheckpointCatalog, CollectiveTester,
                                 RecoveryController)
from repro.evaluation import standard_catalog
from repro.failures.injector import FailureInjector
from repro.failures.logs import LogGenerator
from repro.scheduler.placement import GangPlacer, PlacementError
from repro.training.model import MODEL_123B
from repro.training.parallelism import internevo_v2
from repro.training.step import StepTimeModel

PRETRAIN_NODES = 16           # a 128-GPU slice for this walkthrough
EVAL_NODES = 2                # spare nodes for evaluation rounds
CHECKPOINT_EVERY_STEPS = 150
TARGET_STEPS = 1200
MTBF_STEPS = 500


def main():
    rng = np.random.default_rng(11)
    cluster = make_kalos(PRETRAIN_NODES + EVAL_NODES)
    placer = GangPlacer(cluster)
    catalog = CheckpointCatalog()
    controller = RecoveryController(DiagnosisSystem(), catalog,
                                    cluster.nodes)
    injector = FailureInjector(seed=11)
    logs = LogGenerator(seed=11)
    eval_coordinator = TrialCoordinator(
        CoordinatorConfig(n_nodes=EVAL_NODES))
    datasets = standard_catalog()

    world = PRETRAIN_NODES * 8
    plan = internevo_v2(world, shard_group=64)
    step_time = StepTimeModel(MODEL_123B, plan).step_time()

    placement = placer.place("pretrain-123b", world,
                             require_whole_nodes=True)
    print(f"pretraining placed on {len(placement.node_names)} nodes, "
          f"step time {step_time:.1f}s "
          f"({plan.name}, {world} GPUs)")

    wall = 0.0
    step = 0
    eval_rounds = []
    incident_rows = []
    while step < TARGET_STEPS:
        steps_until_failure = int(rng.exponential(MTBF_STEPS)) + 1
        segment_end = min(step + steps_until_failure, TARGET_STEPS)
        for current in range(step, segment_end):
            wall += step_time
            if current and current % CHECKPOINT_EVERY_STEPS == 0:
                catalog.add(current)
                # Every checkpoint kicks off an evaluation round on the
                # spare nodes (the grey loop of Fig. 1).
                outcome = eval_coordinator.compare(datasets)
                eval_rounds.append({
                    "at_step": current,
                    "baseline_min":
                        outcome["baseline"].makespan / 60.0,
                    "decoupled_min":
                        outcome["decoupled"].makespan / 60.0,
                    "speedup": outcome["speedup"],
                })
        step = segment_end
        if step >= TARGET_STEPS:
            break
        event = injector.sample_pretraining_failure("kalos")
        log = logs.failed_log(event.reason, n_steps=40)
        faulty = {placement.node_names[
            int(rng.integers(len(placement.node_names)))]}
        plan_out = controller.handle_failure(log.lines,
                                             CollectiveTester(faulty))
        migrated = "-"
        if plan_out.cordoned_nodes:
            try:
                placement = placer.migrate_off(
                    "pretrain-123b", plan_out.cordoned_nodes)
                migrated = ",".join(sorted(plan_out.cordoned_nodes))
            except PlacementError:
                # No spare whole nodes: repair in place and continue.
                for name in plan_out.cordoned_nodes:
                    controller.nodes[name].uncordon()
                migrated = "repaired-in-place"
        incident_rows.append({
            "step": step,
            "injected": event.reason,
            "diagnosed": plan_out.diagnosis.reason,
            "restart_from": plan_out.restart_checkpoint_step,
            "cordoned": migrated,
        })
        if plan_out.restart:
            step = plan_out.restart_checkpoint_step or 0
            wall += 10 * 60.0  # automatic recovery: minutes, not hours

    print(render_table(incident_rows, title="\n== incidents =="))
    print(render_table(eval_rounds, title="\n== evaluation rounds =="))
    print(render_key_values({
        "final step": step,
        "wall-clock (h)": wall / 3600.0,
        "checkpoints": len(catalog),
        "evaluation rounds": len(eval_rounds),
        "automation rate": controller.automation_rate(),
    }, title="\n== pipeline summary =="))


if __name__ == "__main__":
    main()
